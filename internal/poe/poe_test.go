package poe

import (
	"testing"

	"snvmm/internal/xbar"
)

func TestSolve8x8PaperShape(t *testing.T) {
	cfg := xbar.DefaultConfig()
	res, err := Solve(Spec{Cfg: cfg, MaxNodes: 20000})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("8x8 paper-shape placement: %d PoEs (optimal=%v)", len(res.PoEs), res.Optimal)
	// Every cell covered at least once and at most twice.
	for m, c := range res.Coverage {
		if c < 1 || c > 2 {
			t.Errorf("cell %d coverage %d outside [1,2]", m, c)
		}
	}
	// The paper reports 16 PoEs for an 8x8 crossbar; with boundary
	// clipping our optimum should land in the same neighbourhood.
	if len(res.PoEs) < 8 || len(res.PoEs) > 20 {
		t.Errorf("PoE count %d implausibly far from the paper's 16", len(res.PoEs))
	}
	// No duplicate PoEs.
	seen := map[xbar.Cell]bool{}
	for _, p := range res.PoEs {
		if seen[p] {
			t.Errorf("duplicate PoE %+v", p)
		}
		seen[p] = true
	}
}

func TestSolve4x4(t *testing.T) {
	cfg := xbar.DefaultConfig()
	cfg.Rows, cfg.Cols = 4, 4
	cfg.VertReach, cfg.HorizReach = 2, 1
	res, err := Solve(Spec{Cfg: cfg, MaxNodes: 20000})
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 2a encrypts a 4x4 crossbar with 4 PoEs.
	t.Logf("4x4 placement: %d PoEs", len(res.PoEs))
	for m, c := range res.Coverage {
		if c < 1 || c > 2 {
			t.Errorf("cell %d coverage %d", m, c)
		}
	}
}

func TestSolveSecuritySlack(t *testing.T) {
	cfg := xbar.DefaultConfig()
	base, err := Solve(Spec{Cfg: cfg, MaxNodes: 20000})
	if err != nil {
		t.Fatal(err)
	}
	baseStats := StatsOf(cfg, cfg.PaperShape, base.PoEs)
	// Increasing S forces more total coverage (more overlap = more
	// security), possibly more PoEs.
	slacked, err := Solve(Spec{Cfg: cfg, S: 40, MaxNodes: 20000})
	if err != nil {
		t.Fatal(err)
	}
	slackedStats := StatsOf(cfg, cfg.PaperShape, slacked.PoEs)
	if slackedStats.TotalCover < cfg.Cells()+40 {
		t.Errorf("S=40 total coverage %d < %d", slackedStats.TotalCover, cfg.Cells()+40)
	}
	if slackedStats.TotalCover < baseStats.TotalCover {
		t.Errorf("slack did not increase coverage: %d vs %d", slackedStats.TotalCover, baseStats.TotalCover)
	}
}

func TestSolveBadSpec(t *testing.T) {
	cfg := xbar.DefaultConfig()
	if _, err := Solve(Spec{Cfg: cfg, S: -1}); err == nil {
		t.Error("expected error for negative S")
	}
	if _, err := Solve(Spec{Cfg: cfg, S: cfg.Cells()}); err == nil {
		t.Error("expected error for S too large")
	}
	bad := cfg
	bad.Rows = 0
	if _, err := Solve(Spec{Cfg: bad}); err == nil {
		t.Error("expected config validation error")
	}
}

func TestCoverageOf(t *testing.T) {
	cfg := xbar.DefaultConfig()
	poes := []xbar.Cell{{Row: 4, Col: 3}}
	cov := CoverageOf(cfg, cfg.PaperShape, poes)
	shape := cfg.PaperShape(xbar.Cell{Row: 4, Col: 3})
	total := 0
	for _, c := range cov {
		total += c
	}
	if total != len(shape) {
		t.Errorf("total coverage %d != shape size %d", total, len(shape))
	}
}

func TestStatsOf(t *testing.T) {
	cfg := xbar.DefaultConfig()
	st := StatsOf(cfg, cfg.PaperShape, nil)
	if st.Uncovered != cfg.Cells() || st.Single != 0 || st.Overlapped != 0 {
		t.Errorf("empty placement stats wrong: %+v", st)
	}
	poes := []xbar.Cell{{Row: 4, Col: 3}, {Row: 4, Col: 3}} // duplicate doubles coverage
	st = StatsOf(cfg, cfg.PaperShape, poes)
	if st.Overlapped == 0 {
		t.Error("duplicate PoEs should create overlapped cells")
	}
}

func TestBestPlacementSweep(t *testing.T) {
	// Fig. 6: as the PoE count grows from 10 to 17, single-covered cells
	// shrink and overlapped cells grow.
	cfg := xbar.DefaultConfig()
	prevOverlap := -1
	for _, k := range []int{10, 13, 16} {
		_, st, err := BestPlacement(cfg, nil, k, 50)
		if err != nil {
			t.Fatal(err)
		}
		if st.PoEs != k {
			t.Errorf("k=%d: placement has %d PoEs", k, st.PoEs)
		}
		if st.Uncovered > 0 && k >= 13 {
			t.Errorf("k=%d: %d cells uncovered", k, st.Uncovered)
		}
		if st.Overlapped < prevOverlap {
			t.Errorf("k=%d: overlapped %d decreased from %d", k, st.Overlapped, prevOverlap)
		}
		prevOverlap = st.Overlapped
	}
}

func TestBestPlacementBounds(t *testing.T) {
	cfg := xbar.DefaultConfig()
	if _, _, err := BestPlacement(cfg, nil, 0, 10); err == nil {
		t.Error("expected error for k=0")
	}
	if _, _, err := BestPlacement(cfg, nil, cfg.Cells()+1, 10); err == nil {
		t.Error("expected error for k too large")
	}
}

func TestGreedyIncumbentFeasibleWhenPossible(t *testing.T) {
	cfg := xbar.DefaultConfig()
	cov := covers(cfg, cfg.PaperShape)
	coveredBy := make([][]int, cfg.Cells())
	for i, cs := range cov {
		for _, m := range cs {
			coveredBy[m] = append(coveredBy[m], i)
		}
	}
	x := greedyIncumbent(cfg.Cells(), cov, coveredBy, 2, 0)
	if x == nil {
		t.Skip("greedy stuck; acceptable, ILP still solves")
	}
	count := make([]int, cfg.Cells())
	for i, v := range x {
		if v > 0.5 {
			for _, m := range cov[i] {
				count[m]++
			}
		}
	}
	for m, c := range count {
		if c < 1 || c > 2 {
			t.Errorf("greedy coverage at %d = %d", m, c)
		}
	}
}
