package poe

import (
	"context"
	"os"
	"testing"
	"time"

	"snvmm/internal/xbar"
)

// Golden scaled placements: the staggered-lattice solutions of the 24x24
// and 32x32 Table 1 programs at the slack ScaledSpec derives (138 and 248).
// They were produced by latticePlacement and polished offline through the
// branch-and-bound solver, which kept the lattice as incumbent (proven lower
// bound 68 PoEs at 24x24 vs the lattice's 72). Cheap feasibility checks pin
// them in tier-1; the full rederivation runs only under
// SNVMM_REDERIVE_PLACEMENTS=1 (the 24x24 root LP alone costs ~11 s, the
// 32x32 one ~70 s).

// 24x24, S=138, 72 PoEs (linear cell indices).
var goldenScaled24 = []int{
	24, 240, 456, 49, 265, 481, 74, 290, 506, 99, 315, 531, 28, 244, 460, 53,
	269, 485, 78, 294, 510, 103, 319, 535, 32, 248, 464, 57, 273, 489, 82, 298,
	514, 107, 323, 539, 36, 252, 468, 61, 277, 493, 86, 302, 518, 111, 327, 543,
	40, 256, 472, 65, 281, 497, 90, 306, 522, 115, 331, 547, 44, 260, 476, 69,
	285, 501, 94, 310, 526, 119, 335, 551,
}

// 32x32, S=248, 128 PoEs.
var goldenScaled32 = []int{
	0, 288, 576, 864, 33, 321, 609, 897, 66, 354, 642, 930, 99, 387, 675, 963,
	132, 420, 708, 996, 5, 293, 581, 869, 38, 326, 614, 902, 71, 359, 647, 935,
	104, 392, 680, 968, 137, 425, 713, 1001, 10, 298, 586, 874, 43, 331, 619, 907,
	76, 364, 652, 940, 109, 397, 685, 973, 142, 430, 718, 1006, 15, 303, 591, 879,
	48, 336, 624, 912, 81, 369, 657, 945, 114, 402, 690, 978, 147, 435, 723, 1011,
	20, 308, 596, 884, 53, 341, 629, 917, 86, 374, 662, 950, 119, 407, 695, 983,
	152, 440, 728, 1016, 25, 313, 601, 889, 58, 346, 634, 922, 91, 379, 667, 955,
	124, 412, 700, 988, 157, 445, 733, 1021, 30, 318, 606, 894, 63, 351, 639, 927,
}

var scaledGoldens = []struct {
	rows, cols, slack int
	idx               []int
}{
	{24, 24, 138, goldenScaled24},
	{32, 32, 248, goldenScaled32},
}

// TestScaledPlacementGoldens verifies the pinned placements the cheap way:
// the spec generator still derives the pinned slack, the deterministic
// construction still reproduces the golden cells, and the placement
// satisfies every Table 1 constraint at that slack.
func TestScaledPlacementGoldens(t *testing.T) {
	for _, g := range scaledGoldens {
		spec, err := ScaledSpec(g.rows, g.cols)
		if err != nil {
			t.Fatalf("%dx%d: %v", g.rows, g.cols, err)
		}
		if spec.S != g.slack {
			t.Errorf("%dx%d: ScaledSpec slack %d, golden %d", g.rows, g.cols, spec.S, g.slack)
		}
		idx := latticePlacement(spec.Cfg)
		if len(idx) != len(g.idx) {
			t.Fatalf("%dx%d: construction has %d PoEs, golden %d", g.rows, g.cols, len(idx), len(g.idx))
		}
		poes := make([]xbar.Cell, len(idx))
		seen := map[int]bool{}
		for i, m := range idx {
			if m != g.idx[i] {
				t.Fatalf("%dx%d: construction diverged from golden at %d: %d vs %d", g.rows, g.cols, i, m, g.idx[i])
			}
			if seen[m] {
				t.Fatalf("%dx%d: duplicate PoE %d", g.rows, g.cols, m)
			}
			seen[m] = true
			poes[i] = spec.Cfg.CellAt(m)
			if !spec.Cfg.InBounds(poes[i]) {
				t.Fatalf("%dx%d: PoE %d out of bounds", g.rows, g.cols, m)
			}
		}
		total := 0
		for m, c := range CoverageOf(spec.Cfg, spec.Cfg.PaperShape, poes) {
			if c < 1 || c > 2 {
				t.Errorf("%dx%d: cell %d coverage %d outside [1,2]", g.rows, g.cols, m, c)
			}
			total += c
		}
		if want := spec.Cfg.Cells() + g.slack; total != want {
			t.Errorf("%dx%d: total coverage %d, want exactly %d", g.rows, g.cols, total, want)
		}
	}
}

// TestScaledSpecGeometry covers the generator's edge behavior: the paper's
// own 8x8 admits the two-offset construction, and a geometry with no stagger
// room is rejected rather than silently producing an infeasible spec.
func TestScaledSpecGeometry(t *testing.T) {
	spec, err := ScaledSpec(8, 8)
	if err != nil {
		t.Fatalf("8x8: %v", err)
	}
	if spec.S < 0 {
		t.Fatalf("8x8: negative slack %d", spec.S)
	}
	if _, err := ScaledSpec(1, 1); err == nil {
		t.Error("1x1: expected geometry rejection")
	}
}

// TestRederiveScaledPlacements re-solves the scaled Table 1 programs from
// scratch — set SNVMM_REDERIVE_PLACEMENTS=1 to run (minutes of LP time).
// The solver must return a feasible placement no larger than the golden
// (its incumbent starts at the lattice, so it can only hold or improve).
func TestRederiveScaledPlacements(t *testing.T) {
	if os.Getenv("SNVMM_REDERIVE_PLACEMENTS") == "" {
		t.Skip("set SNVMM_REDERIVE_PLACEMENTS=1 to re-run the scaled ILPs")
	}
	for _, g := range scaledGoldens {
		spec, err := ScaledSpec(g.rows, g.cols)
		if err != nil {
			t.Fatal(err)
		}
		spec.MaxNodes = 50
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
		res, err := SolveContext(ctx, spec)
		cancel()
		if err != nil {
			t.Fatalf("%dx%d: %v", g.rows, g.cols, err)
		}
		if len(res.PoEs) > len(g.idx) {
			t.Errorf("%dx%d: solver returned %d PoEs, worse than the %d-PoE incumbent",
				g.rows, g.cols, len(res.PoEs), len(g.idx))
		}
		for m, c := range CoverageOf(spec.Cfg, spec.Cfg.PaperShape, res.PoEs) {
			if c < 1 || c > 2 {
				t.Errorf("%dx%d: cell %d coverage %d", g.rows, g.cols, m, c)
			}
		}
		st := StatsOf(spec.Cfg, spec.Cfg.PaperShape, res.PoEs)
		t.Logf("%dx%d S=%d: %d PoEs optimal=%v bound=%.1f nodes=%d stats=%+v",
			g.rows, g.cols, spec.S, len(res.PoEs), res.Optimal, res.BestBound, res.Nodes, st)
	}
}
