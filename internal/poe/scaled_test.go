package poe

import (
	"context"
	"os"
	"testing"
	"time"

	"snvmm/internal/xbar"
)

// Golden scaled placements: the staggered-lattice solutions of the 24x24
// and 32x32 Table 1 programs at the slack ScaledSpec derives (138 and 248).
// They were produced by latticePlacement and polished offline through the
// branch-and-bound solver, which kept the lattice as incumbent (proven lower
// bound 68 PoEs at 24x24 vs the lattice's 72). Cheap feasibility checks pin
// them in tier-1; the full rederivation runs only under
// SNVMM_REDERIVE_PLACEMENTS=1 (the 24x24 root LP alone costs ~11 s, the
// 32x32 one ~70 s).

// 24x24, S=138, 72 PoEs (linear cell indices).
var goldenScaled24 = []int{
	24, 240, 456, 49, 265, 481, 74, 290, 506, 99, 315, 531, 28, 244, 460, 53,
	269, 485, 78, 294, 510, 103, 319, 535, 32, 248, 464, 57, 273, 489, 82, 298,
	514, 107, 323, 539, 36, 252, 468, 61, 277, 493, 86, 302, 518, 111, 327, 543,
	40, 256, 472, 65, 281, 497, 90, 306, 522, 115, 331, 547, 44, 260, 476, 69,
	285, 501, 94, 310, 526, 119, 335, 551,
}

// 32x32, S=248, 128 PoEs.
var goldenScaled32 = []int{
	0, 288, 576, 864, 33, 321, 609, 897, 66, 354, 642, 930, 99, 387, 675, 963,
	132, 420, 708, 996, 5, 293, 581, 869, 38, 326, 614, 902, 71, 359, 647, 935,
	104, 392, 680, 968, 137, 425, 713, 1001, 10, 298, 586, 874, 43, 331, 619, 907,
	76, 364, 652, 940, 109, 397, 685, 973, 142, 430, 718, 1006, 15, 303, 591, 879,
	48, 336, 624, 912, 81, 369, 657, 945, 114, 402, 690, 978, 147, 435, 723, 1011,
	20, 308, 596, 884, 53, 341, 629, 917, 86, 374, 662, 950, 119, 407, 695, 983,
	152, 440, 728, 1016, 25, 313, 601, 889, 58, 346, 634, 922, 91, 379, 667, 955,
	124, 412, 700, 988, 157, 445, 733, 1021, 30, 318, 606, 894, 63, 351, 639, 927,
}

// 48x48, S=564, 288 PoEs (exact-tiling stagger, offsets {0,1,2}).
var goldenScaled48 = []int{
	0, 432, 864, 1296, 1728, 2160, 49, 481, 913, 1345, 1777, 2209, 98, 530, 962, 1394, 1826, 2258,
	3, 435, 867, 1299, 1731, 2163, 52, 484, 916, 1348, 1780, 2212, 101, 533, 965, 1397, 1829, 2261,
	6, 438, 870, 1302, 1734, 2166, 55, 487, 919, 1351, 1783, 2215, 104, 536, 968, 1400, 1832, 2264,
	9, 441, 873, 1305, 1737, 2169, 58, 490, 922, 1354, 1786, 2218, 107, 539, 971, 1403, 1835, 2267,
	12, 444, 876, 1308, 1740, 2172, 61, 493, 925, 1357, 1789, 2221, 110, 542, 974, 1406, 1838, 2270,
	15, 447, 879, 1311, 1743, 2175, 64, 496, 928, 1360, 1792, 2224, 113, 545, 977, 1409, 1841, 2273,
	18, 450, 882, 1314, 1746, 2178, 67, 499, 931, 1363, 1795, 2227, 116, 548, 980, 1412, 1844, 2276,
	21, 453, 885, 1317, 1749, 2181, 70, 502, 934, 1366, 1798, 2230, 119, 551, 983, 1415, 1847, 2279,
	24, 456, 888, 1320, 1752, 2184, 73, 505, 937, 1369, 1801, 2233, 122, 554, 986, 1418, 1850, 2282,
	27, 459, 891, 1323, 1755, 2187, 76, 508, 940, 1372, 1804, 2236, 125, 557, 989, 1421, 1853, 2285,
	30, 462, 894, 1326, 1758, 2190, 79, 511, 943, 1375, 1807, 2239, 128, 560, 992, 1424, 1856, 2288,
	33, 465, 897, 1329, 1761, 2193, 82, 514, 946, 1378, 1810, 2242, 131, 563, 995, 1427, 1859, 2291,
	36, 468, 900, 1332, 1764, 2196, 85, 517, 949, 1381, 1813, 2245, 134, 566, 998, 1430, 1862, 2294,
	39, 471, 903, 1335, 1767, 2199, 88, 520, 952, 1384, 1816, 2248, 137, 569, 1001, 1433, 1865, 2297,
	42, 474, 906, 1338, 1770, 2202, 91, 523, 955, 1387, 1819, 2251, 140, 572, 1004, 1436, 1868, 2300,
	45, 477, 909, 1341, 1773, 2205, 94, 526, 958, 1390, 1822, 2254, 143, 575, 1007, 1439, 1871, 2303,
}

// 64x64, S=1456, 512 PoEs (brick tiling at spacing 8, paired offsets {3,4}).
var goldenScaled64 = []int{
	192, 704, 1216, 1728, 2240, 2752, 3264, 3776, 193, 705, 1217, 1729, 2241, 2753, 3265, 3777, 258, 770,
	1282, 1794, 2306, 2818, 3330, 3842, 259, 771, 1283, 1795, 2307, 2819, 3331, 3843, 196, 708, 1220, 1732,
	2244, 2756, 3268, 3780, 197, 709, 1221, 1733, 2245, 2757, 3269, 3781, 262, 774, 1286, 1798, 2310, 2822,
	3334, 3846, 263, 775, 1287, 1799, 2311, 2823, 3335, 3847, 200, 712, 1224, 1736, 2248, 2760, 3272, 3784,
	201, 713, 1225, 1737, 2249, 2761, 3273, 3785, 266, 778, 1290, 1802, 2314, 2826, 3338, 3850, 267, 779,
	1291, 1803, 2315, 2827, 3339, 3851, 204, 716, 1228, 1740, 2252, 2764, 3276, 3788, 205, 717, 1229, 1741,
	2253, 2765, 3277, 3789, 270, 782, 1294, 1806, 2318, 2830, 3342, 3854, 271, 783, 1295, 1807, 2319, 2831,
	3343, 3855, 208, 720, 1232, 1744, 2256, 2768, 3280, 3792, 209, 721, 1233, 1745, 2257, 2769, 3281, 3793,
	274, 786, 1298, 1810, 2322, 2834, 3346, 3858, 275, 787, 1299, 1811, 2323, 2835, 3347, 3859, 212, 724,
	1236, 1748, 2260, 2772, 3284, 3796, 213, 725, 1237, 1749, 2261, 2773, 3285, 3797, 278, 790, 1302, 1814,
	2326, 2838, 3350, 3862, 279, 791, 1303, 1815, 2327, 2839, 3351, 3863, 216, 728, 1240, 1752, 2264, 2776,
	3288, 3800, 217, 729, 1241, 1753, 2265, 2777, 3289, 3801, 282, 794, 1306, 1818, 2330, 2842, 3354, 3866,
	283, 795, 1307, 1819, 2331, 2843, 3355, 3867, 220, 732, 1244, 1756, 2268, 2780, 3292, 3804, 221, 733,
	1245, 1757, 2269, 2781, 3293, 3805, 286, 798, 1310, 1822, 2334, 2846, 3358, 3870, 287, 799, 1311, 1823,
	2335, 2847, 3359, 3871, 224, 736, 1248, 1760, 2272, 2784, 3296, 3808, 225, 737, 1249, 1761, 2273, 2785,
	3297, 3809, 290, 802, 1314, 1826, 2338, 2850, 3362, 3874, 291, 803, 1315, 1827, 2339, 2851, 3363, 3875,
	228, 740, 1252, 1764, 2276, 2788, 3300, 3812, 229, 741, 1253, 1765, 2277, 2789, 3301, 3813, 294, 806,
	1318, 1830, 2342, 2854, 3366, 3878, 295, 807, 1319, 1831, 2343, 2855, 3367, 3879, 232, 744, 1256, 1768,
	2280, 2792, 3304, 3816, 233, 745, 1257, 1769, 2281, 2793, 3305, 3817, 298, 810, 1322, 1834, 2346, 2858,
	3370, 3882, 299, 811, 1323, 1835, 2347, 2859, 3371, 3883, 236, 748, 1260, 1772, 2284, 2796, 3308, 3820,
	237, 749, 1261, 1773, 2285, 2797, 3309, 3821, 302, 814, 1326, 1838, 2350, 2862, 3374, 3886, 303, 815,
	1327, 1839, 2351, 2863, 3375, 3887, 240, 752, 1264, 1776, 2288, 2800, 3312, 3824, 241, 753, 1265, 1777,
	2289, 2801, 3313, 3825, 306, 818, 1330, 1842, 2354, 2866, 3378, 3890, 307, 819, 1331, 1843, 2355, 2867,
	3379, 3891, 244, 756, 1268, 1780, 2292, 2804, 3316, 3828, 245, 757, 1269, 1781, 2293, 2805, 3317, 3829,
	310, 822, 1334, 1846, 2358, 2870, 3382, 3894, 311, 823, 1335, 1847, 2359, 2871, 3383, 3895, 248, 760,
	1272, 1784, 2296, 2808, 3320, 3832, 249, 761, 1273, 1785, 2297, 2809, 3321, 3833, 314, 826, 1338, 1850,
	2362, 2874, 3386, 3898, 315, 827, 1339, 1851, 2363, 2875, 3387, 3899, 252, 764, 1276, 1788, 2300, 2812,
	3324, 3836, 253, 765, 1277, 1789, 2301, 2813, 3325, 3837, 318, 830, 1342, 1854, 2366, 2878, 3390, 3902,
	319, 831, 1343, 1855, 2367, 2879, 3391, 3903,
}

var scaledGoldens = []struct {
	rows, cols, slack int
	idx               []int
}{
	{24, 24, 138, goldenScaled24},
	{32, 32, 248, goldenScaled32},
	{48, 48, 564, goldenScaled48},
	{64, 64, 1456, goldenScaled64},
}

// TestScaledPlacementGoldens verifies the pinned placements the cheap way:
// the spec generator still derives the pinned slack, the deterministic
// construction still reproduces the golden cells, and the placement
// satisfies every Table 1 constraint at that slack.
func TestScaledPlacementGoldens(t *testing.T) {
	for _, g := range scaledGoldens {
		spec, err := ScaledSpec(g.rows, g.cols)
		if err != nil {
			t.Fatalf("%dx%d: %v", g.rows, g.cols, err)
		}
		if spec.S != g.slack {
			t.Errorf("%dx%d: ScaledSpec slack %d, golden %d", g.rows, g.cols, spec.S, g.slack)
		}
		idx := latticePlacement(spec.Cfg)
		if len(idx) != len(g.idx) {
			t.Fatalf("%dx%d: construction has %d PoEs, golden %d", g.rows, g.cols, len(idx), len(g.idx))
		}
		poes := make([]xbar.Cell, len(idx))
		seen := map[int]bool{}
		for i, m := range idx {
			if m != g.idx[i] {
				t.Fatalf("%dx%d: construction diverged from golden at %d: %d vs %d", g.rows, g.cols, i, m, g.idx[i])
			}
			if seen[m] {
				t.Fatalf("%dx%d: duplicate PoE %d", g.rows, g.cols, m)
			}
			seen[m] = true
			poes[i] = spec.Cfg.CellAt(m)
			if !spec.Cfg.InBounds(poes[i]) {
				t.Fatalf("%dx%d: PoE %d out of bounds", g.rows, g.cols, m)
			}
		}
		total := 0
		for m, c := range CoverageOf(spec.Cfg, spec.Cfg.PaperShape, poes) {
			if c < 1 || c > 2 {
				t.Errorf("%dx%d: cell %d coverage %d outside [1,2]", g.rows, g.cols, m, c)
			}
			total += c
		}
		if want := spec.Cfg.Cells() + g.slack; total != want {
			t.Errorf("%dx%d: total coverage %d, want exactly %d", g.rows, g.cols, total, want)
		}
	}
}

// TestScaledSpecGeometry covers the generator's edge behavior: the paper's
// own 8x8 admits the two-offset construction, and a geometry with no stagger
// room is rejected rather than silently producing an infeasible spec.
func TestScaledSpecGeometry(t *testing.T) {
	spec, err := ScaledSpec(8, 8)
	if err != nil {
		t.Fatalf("8x8: %v", err)
	}
	if spec.S < 0 {
		t.Fatalf("8x8: negative slack %d", spec.S)
	}
	if _, err := ScaledSpec(1, 1); err == nil {
		t.Error("1x1: expected geometry rejection")
	}
}

// TestRederiveScaledPlacements re-solves the scaled Table 1 programs from
// scratch — set SNVMM_REDERIVE_PLACEMENTS=1 to run (minutes of LP time).
// The solver must return a feasible placement no larger than the golden
// (its incumbent starts at the lattice, so it can only hold or improve).
func TestRederiveScaledPlacements(t *testing.T) {
	if os.Getenv("SNVMM_REDERIVE_PLACEMENTS") == "" {
		t.Skip("set SNVMM_REDERIVE_PLACEMENTS=1 to re-run the scaled ILPs")
	}
	for _, g := range scaledGoldens {
		spec, err := ScaledSpec(g.rows, g.cols)
		if err != nil {
			t.Fatal(err)
		}
		spec.MaxNodes = 50
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
		res, err := SolveContext(ctx, spec)
		cancel()
		if err != nil {
			t.Fatalf("%dx%d: %v", g.rows, g.cols, err)
		}
		if len(res.PoEs) > len(g.idx) {
			t.Errorf("%dx%d: solver returned %d PoEs, worse than the %d-PoE incumbent",
				g.rows, g.cols, len(res.PoEs), len(g.idx))
		}
		for m, c := range CoverageOf(spec.Cfg, spec.Cfg.PaperShape, res.PoEs) {
			if c < 1 || c > 2 {
				t.Errorf("%dx%d: cell %d coverage %d", g.rows, g.cols, m, c)
			}
		}
		st := StatsOf(spec.Cfg, spec.Cfg.PaperShape, res.PoEs)
		t.Logf("%dx%d S=%d: %d PoEs optimal=%v bound=%.1f nodes=%d stats=%+v",
			g.rows, g.cols, spec.S, len(res.PoEs), res.Optimal, res.BestBound, res.Nodes, st)
	}
}
