// Package poe determines the point-of-encryption locations for a crossbar —
// the Table 1 integer linear program. With translation-defined polyomino
// footprints the paper's two-index formulation (B[i][j] assigning cells to
// polyomino slots) collapses to one binary per candidate PoE location:
//
//	minimize   sum_i y_i
//	subject to 1 <= cover(m) <= MaxCover          for every cell m
//	           sum_m cover(m) >= M*N + S
//	where      cover(m) = sum over PoEs i whose polyomino contains m of y_i
//
// "Each polyomino has exactly one PoE" and "each cell is a PoE at most once"
// hold by construction. S trades security (more overlap) against latency
// (more pulses), exactly as in the paper.
package poe

import (
	"context"
	"fmt"
	"sort"

	"snvmm/internal/ilp"
	"snvmm/internal/telemetry"
	"snvmm/internal/telemetry/trace"
	"snvmm/internal/xbar"
)

// ShapeFunc returns the polyomino footprint of a candidate PoE.
type ShapeFunc func(xbar.Cell) []xbar.Cell

// Spec describes one placement problem.
type Spec struct {
	Cfg      xbar.Config
	Shape    ShapeFunc // nil means Cfg.PaperShape
	S        int       // security slack (Table 1); 0 <= S <= M*N-1
	MaxCover int       // per-cell overlap cap; 0 means 2 (the paper's value)
	MaxNodes int       // branch-and-bound node limit; 0 means solver default
	Workers  int       // parallel solver workers; 0 means GOMAXPROCS

	// Telemetry, if non-nil, receives the solver's live ilp.* instruments
	// and incumbent events. Observational only; never changes the placement.
	Telemetry *telemetry.Registry

	// Tracer, if non-nil, records the solve as an ilp.solve causal trace
	// root with per-worker child spans. Observational only.
	Tracer *trace.Tracer
}

func (s *Spec) shape() ShapeFunc {
	if s.Shape != nil {
		return s.Shape
	}
	return s.Cfg.PaperShape
}

func (s *Spec) maxCover() int {
	if s.MaxCover <= 0 {
		return 2
	}
	return s.MaxCover
}

// Result is a PoE placement. The placement is canonical: for a given spec
// it is the same across runs and worker counts (the solver returns the
// lexicographically smallest optimal selection).
type Result struct {
	PoEs     []xbar.Cell
	Coverage []int // per-cell polyomino count
	Optimal  bool  // true if branch and bound proved optimality

	// Search statistics from the solver.
	Nodes     int64   // branch-and-bound nodes explored
	BestBound float64 // proven lower bound on the optimal PoE count
	Gap       float64 // relative optimality gap; 0 when Optimal

	// Work distribution of the parallel search.
	Steals           []int64 // per-worker pops off the shared frontier
	IncumbentUpdates int64   // incumbent improvements accepted
}

// covers precomputes, for every candidate PoE i, the linear indices its
// polyomino covers.
func covers(cfg xbar.Config, shape ShapeFunc) [][]int {
	out := make([][]int, cfg.Cells())
	for i := range out {
		cells := shape(cfg.CellAt(i))
		idx := make([]int, len(cells))
		for k, c := range cells {
			idx[k] = cfg.Index(c)
		}
		out[i] = idx
	}
	return out
}

// Solve finds a minimum PoE set satisfying the Table 1 constraints.
func Solve(spec Spec) (*Result, error) {
	return SolveContext(context.Background(), spec)
}

// SolveContext is Solve with cancellation and deadline support: when ctx
// ends early the best placement found so far is returned (Optimal false)
// if one exists.
func SolveContext(ctx context.Context, spec Spec) (*Result, error) {
	if err := spec.Cfg.Validate(); err != nil {
		return nil, err
	}
	n := spec.Cfg.Cells()
	if spec.S < 0 || spec.S > n-1 {
		return nil, fmt.Errorf("poe: S=%d out of [0, %d]", spec.S, n-1)
	}
	cov := covers(spec.Cfg, spec.shape())
	maxCover := spec.maxCover()

	p := &ilp.Problem{NumVars: n, Objective: ones(n)}
	// Per-cell coverage rows.
	coveredBy := make([][]int, n) // cell -> candidate PoEs covering it
	for i, cs := range cov {
		for _, m := range cs {
			coveredBy[m] = append(coveredBy[m], i)
		}
	}
	for m := 0; m < n; m++ {
		if len(coveredBy[m]) == 0 {
			return nil, fmt.Errorf("poe: cell %d coverable by no polyomino; shape too small", m)
		}
		terms := make([]ilp.Term, len(coveredBy[m]))
		for k, i := range coveredBy[m] {
			terms[k] = ilp.Term{Var: i, Coef: 1}
		}
		// One two-sided row per cell: half the tableau rows of a GE+LE pair.
		p.Cons = append(p.Cons,
			ilp.Constraint{Terms: terms, Sense: ilp.RNG, LB: 1, RHS: float64(maxCover)},
		)
	}
	// Total coverage >= M*N + S.
	total := make([]ilp.Term, n)
	for i := range total {
		total[i] = ilp.Term{Var: i, Coef: float64(len(cov[i]))}
	}
	p.Cons = append(p.Cons, ilp.Constraint{Terms: total, Sense: ilp.GE, RHS: float64(n + spec.S)})

	inc := greedyIncumbent(n, cov, coveredBy, maxCover, spec.S)
	if inc == nil && spec.Shape == nil {
		// The greedy jams on larger arrays (it saturates cells until no
		// candidate fits under the cap while slack is still owed); for the
		// paper cross the staggered lattice is a drop-in feasible start.
		inc = latticeIncumbent(spec.Cfg, cov, maxCover, spec.S)
	}
	sol, err := ilp.SolveILPContext(ctx, p, ilp.ILPOptions{
		MaxNodes:          spec.MaxNodes,
		Incumbent:         inc,
		IntegralObjective: true,
		Workers:           spec.Workers,
		Canonicalize:      true,
		Telemetry:         spec.Telemetry,
		Tracer:            spec.Tracer,
	})
	if err != nil {
		return nil, err
	}
	switch sol.Status {
	case ilp.Optimal, ilp.LimitReached:
		if sol.X == nil {
			return nil, fmt.Errorf("poe: solver hit node limit with no feasible placement")
		}
	case ilp.Infeasible:
		return nil, fmt.Errorf("poe: no placement satisfies coverage in [1,%d] with S=%d", maxCover, spec.S)
	default:
		return nil, fmt.Errorf("poe: unexpected solver status %v", sol.Status)
	}
	res := &Result{
		Optimal:          sol.Status == ilp.Optimal,
		Nodes:            sol.Nodes,
		BestBound:        sol.BestBound,
		Gap:              sol.RelGap,
		Steals:           sol.Steals,
		IncumbentUpdates: sol.IncumbentUpdates,
	}
	for i, v := range sol.X {
		if v > 0.5 {
			res.PoEs = append(res.PoEs, spec.Cfg.CellAt(i))
		}
	}
	res.Coverage = CoverageOf(spec.Cfg, spec.shape(), res.PoEs)
	return res, nil
}

// greedyIncumbent builds a feasible cover greedily to seed branch and bound:
// repeatedly add the PoE covering the most uncovered cells without pushing
// any cell past maxCover. Returns nil if the greedy gets stuck.
func greedyIncumbent(n int, cov [][]int, coveredBy [][]int, maxCover, s int) []float64 {
	x := make([]float64, n)
	count := make([]int, n)
	covered := 0
	totalCov := 0
	for covered < n || totalCov < n+s {
		best, bestGain := -1, -1
		for i := 0; i < n; i++ {
			if x[i] > 0 {
				continue
			}
			gain, ok := 0, true
			for _, m := range cov[i] {
				if count[m]+1 > maxCover {
					ok = false
					break
				}
				if count[m] == 0 {
					gain++
				}
			}
			if !ok {
				continue
			}
			// Tie-break toward more total coverage when all cells covered.
			if covered == n {
				gain = len(cov[i])
			}
			if gain > bestGain {
				best, bestGain = i, gain
			}
		}
		if best < 0 {
			return nil
		}
		x[best] = 1
		for _, m := range cov[best] {
			if count[m] == 0 {
				covered++
			}
			count[m]++
			totalCov++
		}
	}
	return x
}

// CoverageOf counts, per cell, how many of the given PoEs' polyominoes
// contain it.
func CoverageOf(cfg xbar.Config, shape ShapeFunc, poes []xbar.Cell) []int {
	cov := make([]int, cfg.Cells())
	for _, p := range poes {
		for _, c := range shape(p) {
			cov[cfg.Index(c)]++
		}
	}
	return cov
}

// Stats summarizes coverage for the Fig. 6 bars.
type Stats struct {
	PoEs       int
	Uncovered  int // cells covered by no polyomino
	Single     int // covered exactly once (the red, vulnerable bar)
	Overlapped int // covered 2+ times (the green, secure bar)
	TotalCover int
}

// StatsOf computes coverage statistics for a placement.
func StatsOf(cfg xbar.Config, shape ShapeFunc, poes []xbar.Cell) Stats {
	cov := CoverageOf(cfg, shape, poes)
	st := Stats{PoEs: len(poes)}
	for _, c := range cov {
		st.TotalCover += c
		switch {
		case c == 0:
			st.Uncovered++
		case c == 1:
			st.Single++
		default:
			st.Overlapped++
		}
	}
	return st
}

// BestPlacement searches for a placement of exactly k PoEs maximizing the
// number of multi-covered cells (Fig. 6's sweep over PoE counts). It uses
// the greedy cover followed by steepest-ascent local search (swap moves), a
// practical stand-in for re-running the full ILP at every k.
func BestPlacement(cfg xbar.Config, shape ShapeFunc, k int, iters int) ([]xbar.Cell, Stats, error) {
	if shape == nil {
		shape = cfg.PaperShape
	}
	n := cfg.Cells()
	if k < 1 || k > n {
		return nil, Stats{}, fmt.Errorf("poe: k=%d out of range", k)
	}
	cov := covers(cfg, shape)
	// Start: greedy by uncovered gain.
	chosen := map[int]bool{}
	count := make([]int, n)
	add := func(i int) {
		chosen[i] = true
		for _, m := range cov[i] {
			count[m]++
		}
	}
	remove := func(i int) {
		delete(chosen, i)
		for _, m := range cov[i] {
			count[m]--
		}
	}
	for len(chosen) < k {
		best, bestGain := -1, -1
		for i := 0; i < n; i++ {
			if chosen[i] {
				continue
			}
			gain := 0
			for _, m := range cov[i] {
				if count[m] == 0 {
					gain += 2
				} else if count[m] == 1 {
					gain++
				}
			}
			if gain > bestGain {
				best, bestGain = i, gain
			}
		}
		add(best)
	}
	score := func() int {
		s := 0
		for _, c := range count {
			switch {
			case c == 0:
				s -= 4 // uncovered cells are heavily penalized
			case c >= 2:
				s++
			}
		}
		return s
	}
	if iters <= 0 {
		iters = 200
	}
	cur := score()
	for it := 0; it < iters; it++ {
		improved := false
		ids := sortedKeys(chosen)
		for _, out := range ids {
			for in := 0; in < n; in++ {
				if chosen[in] {
					continue
				}
				remove(out)
				add(in)
				if s := score(); s > cur {
					cur = s
					improved = true
					break
				}
				remove(in)
				add(out)
			}
			if improved {
				break
			}
		}
		if !improved {
			break
		}
	}
	poes := make([]xbar.Cell, 0, k)
	for _, i := range sortedKeys(chosen) {
		poes = append(poes, cfg.CellAt(i))
	}
	return poes, StatsOf(cfg, shape, poes), nil
}

func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

func ones(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 1
	}
	return out
}
