package poe

import (
	"fmt"

	"snvmm/internal/xbar"
)

// Scaled Table 1 problems. The paper solves the placement ILP only at 8x8,
// where S=56 demands 87.5% of cells be double-covered. That slack density is
// a small-array artifact: at 8x8 nearly every polyomino is boundary-clipped,
// which is exactly what lets the optimizer pack overlap densely. On larger
// arrays most shapes are full crosses, and a cross's two horizontal arms
// collide with the vertical bars of neighbouring columns, capping the
// integer-achievable overlap well below the LP relaxation's. The staggered
// lattice below is the constructive witness: it tiles every column with
// vertical bars (each cell covered exactly once) and staggers the bar
// offsets so no cell ever receives two horizontal arms — a feasible
// placement at ~24% slack density for any array the geometry admits.
//
// ScaledSpec therefore scales the slack to what the construction sustains,
// keeping scaled specs feasible by construction while still forcing the
// solver to prove (or improve on) a dense-overlap placement.

// staggerOffsets returns the contiguous range of bar offsets that cover a
// rows-long column with bars of half-height v placed every spacing rows:
// the top bar covers row 0 when o <= v, and the bottom row is covered when
// the last in-range bar (at rows-1 - (rows-1-o) mod spacing) reaches it.
// Both constraints together give o in [t0-v, t0] ∩ [0, v] with
// t0 = (rows-1) mod spacing.
func staggerOffsets(rows, v, spacing int) (lo, hi int) {
	t0 := (rows - 1) % spacing
	lo, hi = t0-v, t0
	if lo < 0 {
		lo = 0
	}
	if hi > v {
		hi = v
	}
	return lo, hi
}

// latticePlacement returns the staggered-lattice placement for the config's
// paper cross shape as linear cell indices, or nil when the geometry does
// not admit the construction (e.g. vertical reach too large for the row
// count, or horizontal arms long enough to defeat the stagger — callers
// always re-validate coverage).
//
// Bars spaced L = 2*VertReach+1 apart tile a column exactly once, and any
// two distinct offsets below L put adjacent columns' bar rows out of phase,
// so no cell ever collects two horizontal arms. When the row count leaves
// fewer than two exact-tiling offsets (e.g. 64 = 7*9+1 rows admits only
// offset 0), the construction falls back to a brick tiling at spacing L-1:
// consecutive bars overlap in exactly one row, and the offset window the
// bottom-coverage constraint leaves (width <= VertReach+1 < L-1) keeps
// those double-covered rows clear of every neighbouring column's bar
// centers, so coverage still never exceeds two.
func latticePlacement(cfg xbar.Config) []int {
	L := 2*cfg.VertReach + 1
	if cfg.Rows < L-cfg.VertReach || L <= 1 {
		return nil
	}
	for _, spacing := range []int{L, L - 1} {
		lo, hi := staggerOffsets(cfg.Rows, cfg.VertReach, spacing)
		m := hi - lo + 1
		if m < 2 {
			continue // no stagger room: adjacent columns would share bar rows
		}
		// Column c's bar offset. With three or more distinct offsets a simple
		// c mod m stagger keeps columns c-1 and c+1 on different rows; with
		// two, the paired pattern a,a,b,b does.
		offset := func(c int) int {
			if m >= 3 {
				return lo + c%m
			}
			return lo + (c/2)%2
		}
		var idx []int
		for c := 0; c < cfg.Cols; c++ {
			for r := offset(c); r < cfg.Rows; r += spacing {
				idx = append(idx, r*cfg.Cols+c)
			}
		}
		return idx
	}
	return nil
}

// latticeIncumbent renders the lattice placement as a branch-and-bound
// incumbent vector, verifying feasibility against the actual shape and
// slack; nil if the construction fails or falls short of S.
func latticeIncumbent(cfg xbar.Config, cov [][]int, maxCover, s int) []float64 {
	idx := latticePlacement(cfg)
	if idx == nil {
		return nil
	}
	n := cfg.Cells()
	x := make([]float64, n)
	count := make([]int, n)
	total := 0
	for _, i := range idx {
		x[i] = 1
		for _, m := range cov[i] {
			count[m]++
			total++
		}
	}
	if total < n+s {
		return nil
	}
	for _, c := range count {
		if c < 1 || c > maxCover {
			return nil
		}
	}
	return x
}

// LatticeSlack returns the security slack the staggered-lattice construction
// achieves for the config's paper shape (total coverage minus cell count),
// or -1 when the construction does not apply. This is a constructive lower
// bound on the maximum feasible S of the Table 1 program.
func LatticeSlack(cfg xbar.Config) int {
	idx := latticePlacement(cfg)
	if idx == nil {
		return -1
	}
	n := cfg.Cells()
	count := make([]int, n)
	total := 0
	for _, i := range idx {
		for _, m := range cfg.PaperShape(cfg.CellAt(i)) {
			count[cfg.Index(m)]++
			total++
		}
	}
	for _, c := range count {
		if c < 1 || c > 2 {
			return -1
		}
	}
	return total - n
}

// ScaledSpec builds the Table 1 placement problem for a rows x cols crossbar
// with the paper's device parameters and the slack the lattice construction
// sustains at that size — the densest overlap target known feasible a
// priori. It fails when the geometry does not admit the construction.
func ScaledSpec(rows, cols int) (Spec, error) {
	cfg := xbar.DefaultConfig()
	cfg.Rows, cfg.Cols = rows, cols
	if err := cfg.Validate(); err != nil {
		return Spec{}, err
	}
	s := LatticeSlack(cfg)
	if s < 0 {
		return Spec{}, fmt.Errorf("poe: no lattice construction for %dx%d with reach %d/%d",
			rows, cols, cfg.VertReach, cfg.HorizReach)
	}
	return Spec{Cfg: cfg, S: s}, nil
}
