package poe

import (
	"fmt"

	"snvmm/internal/xbar"
)

// Scaled Table 1 problems. The paper solves the placement ILP only at 8x8,
// where S=56 demands 87.5% of cells be double-covered. That slack density is
// a small-array artifact: at 8x8 nearly every polyomino is boundary-clipped,
// which is exactly what lets the optimizer pack overlap densely. On larger
// arrays most shapes are full crosses, and a cross's two horizontal arms
// collide with the vertical bars of neighbouring columns, capping the
// integer-achievable overlap well below the LP relaxation's. The staggered
// lattice below is the constructive witness: it tiles every column with
// vertical bars (each cell covered exactly once) and staggers the bar
// offsets so no cell ever receives two horizontal arms — a feasible
// placement at ~24% slack density for any array the geometry admits.
//
// ScaledSpec therefore scales the slack to what the construction sustains,
// keeping scaled specs feasible by construction while still forcing the
// solver to prove (or improve on) a dense-overlap placement.

// latticePlacement returns the staggered-lattice placement for the config's
// paper cross shape as linear cell indices, or nil when the geometry does
// not admit the construction (e.g. vertical reach too large for the row
// count, or horizontal arms long enough to defeat the stagger — callers
// always re-validate coverage).
func latticePlacement(cfg xbar.Config) []int {
	L := 2*cfg.VertReach + 1
	if cfg.Rows < L-cfg.VertReach || L <= 0 {
		return nil
	}
	// Bars at rows r0+k*L tile a column exactly once when consecutive bars
	// abut: r0 <= VertReach keeps row 0 covered, and the last bar must reach
	// the bottom row.
	k := (cfg.Rows + L - 1) / L
	lo := cfg.Rows - 1 - cfg.VertReach - (k-1)*L
	if lo < 0 {
		lo = 0
	}
	hi := cfg.VertReach
	m := hi - lo + 1
	if m < 2 {
		return nil // no stagger room: adjacent columns would share bar rows
	}
	// Column c's bar offset. With three or more distinct offsets a simple
	// c mod m stagger keeps columns c-1 and c+1 on different rows; with two,
	// the paired pattern a,a,b,b does.
	offset := func(c int) int {
		if m >= 3 {
			return lo + c%m
		}
		return lo + (c/2)%2
	}
	var idx []int
	for c := 0; c < cfg.Cols; c++ {
		for r := offset(c); r < cfg.Rows; r += L {
			idx = append(idx, r*cfg.Cols+c)
		}
	}
	return idx
}

// latticeIncumbent renders the lattice placement as a branch-and-bound
// incumbent vector, verifying feasibility against the actual shape and
// slack; nil if the construction fails or falls short of S.
func latticeIncumbent(cfg xbar.Config, cov [][]int, maxCover, s int) []float64 {
	idx := latticePlacement(cfg)
	if idx == nil {
		return nil
	}
	n := cfg.Cells()
	x := make([]float64, n)
	count := make([]int, n)
	total := 0
	for _, i := range idx {
		x[i] = 1
		for _, m := range cov[i] {
			count[m]++
			total++
		}
	}
	if total < n+s {
		return nil
	}
	for _, c := range count {
		if c < 1 || c > maxCover {
			return nil
		}
	}
	return x
}

// LatticeSlack returns the security slack the staggered-lattice construction
// achieves for the config's paper shape (total coverage minus cell count),
// or -1 when the construction does not apply. This is a constructive lower
// bound on the maximum feasible S of the Table 1 program.
func LatticeSlack(cfg xbar.Config) int {
	idx := latticePlacement(cfg)
	if idx == nil {
		return -1
	}
	n := cfg.Cells()
	count := make([]int, n)
	total := 0
	for _, i := range idx {
		for _, m := range cfg.PaperShape(cfg.CellAt(i)) {
			count[cfg.Index(m)]++
			total++
		}
	}
	for _, c := range count {
		if c < 1 || c > 2 {
			return -1
		}
	}
	return total - n
}

// ScaledSpec builds the Table 1 placement problem for a rows x cols crossbar
// with the paper's device parameters and the slack the lattice construction
// sustains at that size — the densest overlap target known feasible a
// priori. It fails when the geometry does not admit the construction.
func ScaledSpec(rows, cols int) (Spec, error) {
	cfg := xbar.DefaultConfig()
	cfg.Rows, cfg.Cols = rows, cols
	if err := cfg.Validate(); err != nil {
		return Spec{}, err
	}
	s := LatticeSlack(cfg)
	if s < 0 {
		return Spec{}, fmt.Errorf("poe: no lattice construction for %dx%d with reach %d/%d",
			rows, cols, cfg.VertReach, cfg.HorizReach)
	}
	return Spec{Cfg: cfg, S: s}, nil
}
