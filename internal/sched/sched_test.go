package sched

import (
	"runtime"
	"testing"
)

// withGOMAXPROCS runs f with the schedulable parallelism pinned to n.
func withGOMAXPROCS(t *testing.T, n int, f func()) {
	t.Helper()
	old := runtime.GOMAXPROCS(n)
	defer runtime.GOMAXPROCS(old)
	f()
}

func TestWorkers(t *testing.T) {
	withGOMAXPROCS(t, 4, func() {
		cases := []struct{ req, want int }{
			{-1, 4}, // <= 0 selects GOMAXPROCS
			{0, 4},
			{1, 1},
			{3, 3},
			{4, 4},
			{5, 4},   // clamped to GOMAXPROCS
			{100, 4}, // clamped to GOMAXPROCS
		}
		for _, c := range cases {
			if got := Workers(c.req); got != c.want {
				t.Errorf("Workers(%d) = %d, want %d", c.req, got, c.want)
			}
		}
	})
	withGOMAXPROCS(t, 1, func() {
		for _, req := range []int{-1, 0, 1, 8} {
			if got := Workers(req); got != 1 {
				t.Errorf("GOMAXPROCS=1: Workers(%d) = %d, want 1", req, got)
			}
		}
	})
}

func TestWorkersFor(t *testing.T) {
	withGOMAXPROCS(t, 8, func() {
		cases := []struct{ req, items, want int }{
			{0, 3, 3},   // GOMAXPROCS capped at the item count
			{0, 100, 8}, // more items than cores: full parallelism
			{4, 2, 2},   // fewer items than requested workers
			{4, 0, 4},   // items <= 0 leaves the count uncapped
			{4, -1, 4},
			{100, 50, 8}, // GOMAXPROCS clamp still applies first
			{2, 1, 1},
		}
		for _, c := range cases {
			if got := WorkersFor(c.req, c.items); got != c.want {
				t.Errorf("WorkersFor(%d, %d) = %d, want %d", c.req, c.items, got, c.want)
			}
		}
	})
}
