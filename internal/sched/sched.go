// Package sched centralizes the worker-count policy shared by the repo's
// CPU-bound parallel paths (the SPECU worker pool, simulation sweeps, the
// WarmAll characterization fan-out, the Monte-Carlo sampler).
//
// Every one of those paths runs pure CPU work, so goroutines beyond the
// schedulable parallelism only add context-switch and queue-contention
// overhead — BENCH_specu.json measured workers=8 sharded reads at 160 µs vs
// 117 µs sequential on a 1-vCPU host before the clamp was introduced. The
// clamp used to be copy-pasted per call site; this package is the single
// definition, and the adaptive pool sizing derives its bounds from it.
package sched

import "runtime"

// Workers resolves a requested worker count against the host's schedulable
// parallelism: req <= 0 selects GOMAXPROCS, and larger requests are clamped
// to it. The result is always >= 1.
func Workers(req int) int {
	maxp := runtime.GOMAXPROCS(0)
	if req <= 0 || req > maxp {
		return maxp
	}
	return req
}

// WorkersFor is Workers additionally capped at the number of independent
// work items (items <= 0 leaves the count uncapped): spinning up more
// goroutines than there are items buys nothing and costs their startup.
func WorkersFor(req, items int) int {
	w := Workers(req)
	if items > 0 && w > items {
		w = items
	}
	return w
}
