module snvmm

go 1.22
