package snvmm

// Integration tests spanning module boundaries: facade + NIST, SPE + ECC,
// SPE + wear leveling, the full hierarchy power cycle, and the security
// end-to-end properties the paper's threat model demands.

import (
	"bytes"
	"testing"

	"snvmm/internal/attacks"
	"snvmm/internal/core"
	"snvmm/internal/ecc"
	"snvmm/internal/mem"
	"snvmm/internal/nist"
	"snvmm/internal/prng"
	"snvmm/internal/secure"
	"snvmm/internal/sim"
	"snvmm/internal/trace"
	"snvmm/internal/wearlevel"
)

// TestStolenDumpLooksRandom: the ciphertext an attacker steals from a
// powered-down device must pass the basic NIST battery — Attack 1 yields
// nothing distinguishable from noise, even for an all-zero plaintext.
func TestStolenDumpLooksRandom(t *testing.T) {
	dev, err := Open(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.PowerOn(); err != nil {
		t.Fatal(err)
	}
	// Fill blocks with zeros (the hardest plaintext to hide).
	const blocks = 64
	zero := make([]byte, BlockSize)
	for i := uint64(0); i < blocks; i++ {
		if err := dev.Write(i*BlockSize, zero); err != nil {
			t.Fatal(err)
		}
	}
	if err := dev.PowerOff(); err != nil {
		t.Fatal(err)
	}
	var bits []uint8
	for i := uint64(0); i < blocks; i++ {
		dump, err := dev.Steal(i * BlockSize)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range dump {
			for k := 0; k < 8; k++ {
				bits = append(bits, b>>uint(k)&1)
			}
		}
	}
	for _, test := range []func([]uint8) nist.Result{
		nist.Frequency,
		func(b []uint8) nist.Result { return nist.BlockFrequency(b, 128) },
		nist.Runs,
		nist.LongestRunOfOnes,
		nist.CumulativeSums,
		func(b []uint8) nist.Result { return nist.ApproximateEntropy(b, 5) },
	} {
		r := test(bits)
		if r.Applicable && !r.Pass(nist.Alpha) {
			t.Errorf("stolen all-zero-plaintext dump fails %s (p=%v)", r.Name, r.P)
		}
	}
}

// TestSPEWithECC: the Section 3 mitigation — wrap SPE ciphertext in SECDED
// so a radiation-flipped cell does not destroy the block after decryption.
func TestSPEWithECC(t *testing.T) {
	dev, err := Open(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.PowerOn(); err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 56) // 56 data bytes -> 63 coded, padded to 64
	copy(payload, []byte("ecc-protected secret payload"))
	coded, err := ecc.Encode(payload)
	if err != nil {
		t.Fatal(err)
	}
	block := make([]byte, BlockSize)
	copy(block, coded)
	if err := dev.Write(0, block); err != nil {
		t.Fatal(err)
	}
	got, err := dev.Read(0)
	if err != nil {
		t.Fatal(err)
	}
	data, corrected, err := ecc.Decode(got[:len(coded)])
	if err != nil || corrected != 0 {
		t.Fatalf("clean path: err=%v corrected=%d", err, corrected)
	}
	if !bytes.Equal(data, payload) {
		t.Error("ECC+SPE round trip failed")
	}
	// Inject a single-bit upset in the *plaintext domain* (after read):
	// SECDED corrects it.
	got[3] ^= 0x10
	data, corrected, err = ecc.Decode(got[:len(coded)])
	if err != nil || corrected != 1 {
		t.Fatalf("upset path: err=%v corrected=%d", err, corrected)
	}
	if !bytes.Equal(data, payload) {
		t.Error("single-bit upset not corrected")
	}
}

// TestCiphertextBitflipAvalanche: a bit flipped in the *stored ciphertext*
// (an in-array upset) garbles the whole block after decryption — SPE
// diffuses errors, which is why ECC must wrap the plaintext, not the
// ciphertext. This pins the design guidance documented in DESIGN.md.
func TestCiphertextBitflipAvalanche(t *testing.T) {
	eng, err := coreEngine()
	if err != nil {
		t.Fatal(err)
	}
	ciph, err := coreCipher(eng, 11)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(7)
	pt := make([]byte, ciph.BlockBytes())
	copy(pt, []byte("0123456789abcdef"))
	ct, err := ciph.Encrypt(key, pt)
	if err != nil {
		t.Fatal(err)
	}
	ct[5] ^= 0x04
	got, err := ciph.Decrypt(key, ct)
	if err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := range got {
		x := got[i] ^ pt[i]
		for ; x != 0; x &= x - 1 {
			diff++
		}
	}
	if diff < 8 {
		t.Errorf("in-array upset changed only %d plaintext bits; expected avalanche", diff)
	}
}

// TestWearLeveledSPEAddressing: compose start-gap with the SPE device —
// logical blocks migrate physically while data stays readable.
func TestWearLeveledSPEAddressing(t *testing.T) {
	const lines = 64
	m, err := wearlevel.New(lines, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := Open(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.PowerOn(); err != nil {
		t.Fatal(err)
	}
	// Write logical lines through the wear-level mapping.
	content := func(l int) []byte {
		b := make([]byte, BlockSize)
		b[0] = byte(l)
		b[63] = byte(l ^ 0x5A)
		return b
	}
	phys := make(map[int]int)
	for l := 0; l < 8; l++ {
		pa, err := m.WriteNotify(l)
		if err != nil {
			t.Fatal(err)
		}
		phys[l] = pa
		if err := dev.Write(uint64(pa)*BlockSize, content(l)); err != nil {
			t.Fatal(err)
		}
	}
	// Read back through the *current* mapping: the gap may have moved, so
	// re-map and verify the expected relocations are consistent.
	for l := 0; l < 8; l++ {
		got, err := dev.Read(uint64(phys[l]) * BlockSize)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, content(l)) {
			t.Errorf("logical %d corrupted through wear-level mapping", l)
		}
	}
}

// TestHierarchyPowerCycleWindow: the full Section 6.4 flow on the memory
// hierarchy — dirty the caches, power down, verify the engine reports a
// fully-encrypted NVMM and a window in the expected range.
func TestHierarchyPowerCycleWindow(t *testing.T) {
	engine := secure.NewSPESerial(10_000)
	h, err := mem.DefaultHierarchy(engine)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		h.StoreAccess(uint64(i)*64, uint64(i))
		h.LoadLatency(uint64(i)*64+1<<24, uint64(i))
	}
	if engine.EncryptedFraction() == 1 {
		t.Fatal("expected plaintext blocks before power-down")
	}
	dirty, cycles := h.PowerDown(1 << 20)
	if dirty == 0 {
		t.Fatal("no dirty lines flushed")
	}
	if engine.EncryptedFraction() != 1 {
		t.Error("NVMM not fully encrypted after power-down")
	}
	// Window must be dominated by the per-block 5120-cycle encryption.
	if cycles < uint64(dirty)*100 {
		t.Errorf("window %d cycles implausibly small for %d lines", cycles, dirty)
	}
}

// TestSchemeCrossoverBzip2VsSjeng pins the paper's Fig. 7/8 narrative: on
// hot-page bzip2, i-NVMM keeps more memory plaintext than on
// wide-footprint sjeng, while SPE-serial holds high coverage on both.
func TestSchemeCrossoverBzip2VsSjeng(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	run := func(name string) (invmm, spe float64) {
		p, err := trace.ProfileByName(name)
		if err != nil {
			t.Fatal(err)
		}
		r1, err := sim.Run(p, secure.NewINVMM(300_000), 250_000, 1)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := sim.Run(p, secure.NewSPESerial(10_000), 250_000, 1)
		if err != nil {
			t.Fatal(err)
		}
		return r1.AvgEncrypted, r2.AvgEncrypted
	}
	bzInv, bzSpe := run("bzip2")
	sjInv, sjSpe := run("sjeng")
	if bzInv <= sjInv {
		t.Errorf("i-NVMM coverage bzip2 %.2f <= sjeng %.2f; hot pages should stay plaintext on bzip2 but its footprint is smaller", bzInv, sjInv)
	}
	if bzSpe < 0.95 || sjSpe < 0.95 {
		t.Errorf("SPE-serial coverage dropped: bzip2 %.2f sjeng %.2f", bzSpe, sjSpe)
	}
}

// TestBruteForceConsistency ties the attack model to the engine: the
// search-space size must follow the actual placement and pulse library.
func TestBruteForceConsistency(t *testing.T) {
	dev, err := Open(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	bf := attacks.BruteForce{
		Cells:  64,
		PoEs:   len(dev.PlacementCells()),
		Pulses: 32,
	}
	if bf.PoEs != 16 {
		t.Fatalf("placement has %d PoEs", bf.PoEs)
	}
	y, err := bf.Log10Years()
	if err != nil {
		t.Fatal(err)
	}
	if y < 30 {
		t.Errorf("brute force only 10^%.1f years", y)
	}
}

// --- helpers bridging to internal packages ---

func coreEngine() (*core.Engine, error) { return core.NewEngine(core.DefaultParams()) }

func coreCipher(e *core.Engine, seed int64) (*core.Cipher, error) { return core.NewCipher(e, seed) }

func testKey(seed uint64) prng.Key {
	g := prng.NewGen(seed)
	return prng.NewKey(g.Uint64(), g.Uint64())
}
