package snvmm

import (
	"bytes"
	"testing"
)

func openTestDevice(t *testing.T, opt Options) *Device {
	t.Helper()
	d, err := Open(opt)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDeviceLifecycle(t *testing.T) {
	d := openTestDevice(t, DefaultOptions())
	if d.PoECount() != 16 {
		t.Errorf("PoECount = %d, want 16", d.PoECount())
	}
	if err := d.PowerOn(); err != nil {
		t.Fatal(err)
	}
	if err := d.PowerOn(); err == nil {
		t.Error("double power-on should fail")
	}
	secret := make([]byte, BlockSize)
	copy(secret, []byte("root:$6$salted$hash"))
	if err := d.Write(0, secret); err != nil {
		t.Fatal(err)
	}
	got, err := d.Read(0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, secret) {
		t.Error("read-back mismatch")
	}
	if err := d.PowerOff(); err != nil {
		t.Fatal(err)
	}
	// Attack 1: the dump after power-off is ciphertext.
	dump, err := d.Steal(0)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(dump, secret) || bytes.Contains(dump, []byte("salted")) {
		t.Error("plaintext leaked after power-off")
	}
	// Reads fail without the key.
	if _, err := d.Read(0); err == nil {
		t.Error("read without power should fail")
	}
	// Instant-on: power up restores access.
	if err := d.PowerOn(); err != nil {
		t.Fatal(err)
	}
	got, err = d.Read(0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, secret) {
		t.Error("data lost across power cycle")
	}
}

func TestWriteValidation(t *testing.T) {
	d := openTestDevice(t, DefaultOptions())
	if err := d.PowerOn(); err != nil {
		t.Fatal(err)
	}
	if err := d.Write(0, make([]byte, 10)); err == nil {
		t.Error("short write accepted")
	}
	if err := d.Write(7, make([]byte, BlockSize)); err == nil {
		t.Error("unaligned write accepted")
	}
}

func TestSerialModeFlush(t *testing.T) {
	opt := DefaultOptions()
	opt.Mode = Serial
	d := openTestDevice(t, opt)
	if err := d.PowerOn(); err != nil {
		t.Fatal(err)
	}
	if err := d.Write(0, make([]byte, BlockSize)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Read(0); err != nil {
		t.Fatal(err)
	}
	if f := d.EncryptedFraction(); f == 1 {
		t.Error("serial read should leave plaintext")
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	if f := d.EncryptedFraction(); f != 1 {
		t.Errorf("fraction %g after flush", f)
	}
}

func TestPlacementCellsCopy(t *testing.T) {
	d := openTestDevice(t, DefaultOptions())
	p := d.PlacementCells()
	if len(p) != 16 {
		t.Fatalf("placement size %d", len(p))
	}
	p[0].Row = 99 // mutating the copy must not affect the device
	if d.PlacementCells()[0].Row == 99 {
		t.Error("PlacementCells exposes internal state")
	}
}

func TestDistinctDevicesDistinctCiphertext(t *testing.T) {
	mk := func(seed int64) []byte {
		opt := DefaultOptions()
		opt.Seed = seed
		d := openTestDevice(t, opt)
		if err := d.PowerOn(); err != nil {
			t.Fatal(err)
		}
		if err := d.Write(0, make([]byte, BlockSize)); err != nil {
			t.Fatal(err)
		}
		dump, err := d.Steal(0)
		if err != nil {
			t.Fatal(err)
		}
		return dump
	}
	if bytes.Equal(mk(1), mk(2)) {
		t.Error("two devices produced identical ciphertext for the same plaintext")
	}
}
