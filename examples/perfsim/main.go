// Performance lab: run the cycle-level simulator on one SPEC-like workload
// under every encryption scheme and print the Fig. 7/8 quantities for it,
// plus the memory-system detail that explains them.
package main

import (
	"flag"
	"fmt"
	"log"

	"snvmm/internal/secure"
	"snvmm/internal/sim"
	"snvmm/internal/trace"
)

var (
	workload = flag.String("workload", "sjeng", "benchmark profile (see internal/trace)")
	insts    = flag.Int64("insts", 1_000_000, "instructions to simulate")
)

func main() {
	flag.Parse()
	p, err := trace.ProfileByName(*workload)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload %s: %d MB footprint, %.0f%% hot in %d KB\n",
		p.Name, p.WorkingSetBytes>>20, p.HotFraction*100, p.HotSetBytes>>10)

	base, err := sim.Run(p, secure.NewPlain(), *insts, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%-13s %8s %10s %10s %10s %12s\n",
		"scheme", "IPC", "overhead", "L2 miss", "NVMM rd", "encrypted")
	fmt.Printf("%-13s %8.3f %9.2f%% %9.1f%% %10d %11.1f%%\n",
		"Plain", base.IPC, 0.0, base.L2MissRate*100, base.MemReads, 0.0)
	for _, s := range sim.Schemes() {
		r, err := sim.Run(p, s.New(), *insts, 1)
		if err != nil {
			log.Fatal(err)
		}
		ov := (base.IPC - r.IPC) / base.IPC * 100
		fmt.Printf("%-13s %8.3f %9.2f%% %9.1f%% %10d %11.1f%%\n",
			s.Name, r.IPC, ov, r.L2MissRate*100, r.MemReads, r.AvgEncrypted*100)
	}
	fmt.Println("\nSPE-serial pays the 16-cycle decrypt only on reads of encrypted blocks;")
	fmt.Println("SPE-parallel re-encrypts immediately (bank occupancy) and keeps 100%")
	fmt.Println("of memory ciphertext; AES pays 80 cycles on every NVMM access.")
}
