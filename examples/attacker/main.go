// Attacker's-eye view: mount the paper's attacks against SPE.
//
//  1. Attack 2 at toy scale — exhaustively recover the pulse schedule of a
//     2-PoE 4x4 crossbar from one plaintext/ciphertext pair, counting
//     trials, then extrapolate the same search to the real 16-PoE 8x8
//     configuration.
//  2. Insertion attack — measure the ciphertext flip statistics and show
//     there is no exploitable bias.
package main

import (
	"fmt"
	"log"
	"math"

	"snvmm/internal/attacks"
	"snvmm/internal/core"
	"snvmm/internal/xbar"
)

func main() {
	// --- Toy-scale exhaustive schedule recovery.
	cfg := xbar.DefaultConfig()
	cfg.Rows, cfg.Cols = 4, 4
	cfg.VertReach, cfg.HorizReach = 2, 1
	placement := []xbar.Cell{{Row: 1, Col: 1}, {Row: 2, Col: 2}}
	const fabSeed = 7
	const classLimit = 8

	// The victim encrypts a known header (the known-plaintext setting).
	xb, err := xbar.New(seeded(cfg, fabSeed))
	if err != nil {
		log.Fatal(err)
	}
	cal := xbar.Calibrate(xb)
	pt := []byte{'E', 'L', 'F', 0x7f}
	if err := xb.WriteBlock(pt); err != nil {
		log.Fatal(err)
	}
	secret := []struct{ poe, class int }{{1, 5}, {0, 2}}
	for _, s := range secret {
		if err := xb.ApplyPulse(cal, placement[s.poe], s.class); err != nil {
			log.Fatal(err)
		}
	}
	ct := xb.ReadBlock()
	fmt.Printf("victim: pt=%x  ct=%x  (2 PoEs, %d pulse classes)\n", pt, ct, classLimit)

	order, classes, trials, err := attacks.RecoverScheduleToy(cfg, placement, pt, ct, fabSeed, classLimit)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("attacker: recovered order=%v classes=%v after %d trials\n", order, classes, trials)

	// --- Extrapolate to the real configuration.
	bf := attacks.DefaultBruteForce()
	combs, err := bf.Log10Combinations()
	if err != nil {
		log.Fatal(err)
	}
	years, err := bf.Log10Years()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsame attack on the real 8x8/16-PoE device:\n")
	fmt.Printf("  search space: 10^%.1f schedules\n", combs)
	fmt.Printf("  at 100 ns per pulse: 10^%.1f years\n", years)
	known := bf
	known.KnownILP = true
	knownYears, err := known.Log10Years()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  with the ILP placement public: 10^%.1f years\n", knownYears)
	toyRate := float64(trials) // trials in well under a second
	full := math.Pow(10, combs)
	fmt.Printf("  (the toy search did %.0f trials; the real key space is %.1e times larger)\n",
		toyRate, full/toyRate)

	// --- Insertion attack statistics.
	eng, err := core.NewEngine(core.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	mean, stderr, err := attacks.InsertionBias(eng, 100, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ninsertion attack: flipping one known plaintext bit flips %.1f%% ± %.1f%% of\n",
		mean*100, stderr*100)
	fmt.Println("ciphertext bits — indistinguishable from coin flips, no usable correlation.")
}

func seeded(cfg xbar.Config, seed int64) xbar.Config {
	cfg.Seed = seed
	return cfg
}
