// Device lab: explore the TEAM memristor that underlies SPE — the Fig. 5
// hysteresis experiment, the MLC level map, the 32-pulse library with
// calibrated decrypt widths, and a state-vs-time sweep under a pulse train.
package main

import (
	"fmt"
	"log"
	"strings"

	"snvmm/internal/device"
)

func main() {
	p := device.DefaultParams()

	fmt.Println("== MLC-2 level map ==")
	for l := 0; l < device.Levels; l++ {
		r := p.ROn + (p.ROff-p.ROn)*device.LevelCenter(l)
		fmt.Printf("  level %d: logic %02b, center x=%.3f, R=%.1f kOhm\n",
			l, device.LevelBits(l), device.LevelCenter(l), r/1e3)
	}

	fmt.Println("\n== Fig. 5: hysteresis ==")
	enc := device.Pulse{Voltage: 1, Width: 0.071e-6}
	x0 := device.LevelCenter(1)
	x1 := p.StateAfter(x0, enc)
	decW, err := p.CalibrateDecryptWidth(x0, enc, 1e-9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  encrypt: +1 V %.3f us moves logic 10 -> %02b (%.0f kOhm)\n",
		enc.Width*1e6, device.LevelBits(device.QuantizeLevel(x1)),
		(p.ROn+(p.ROff-p.ROn)*x1)/1e3)
	fmt.Printf("  decrypt needs -1 V %.3f us (%.1fx shorter: KOn/KOff asymmetry)\n",
		decW*1e6, enc.Width/decW)

	fmt.Println("\n== 32-pulse SPE library ==")
	lib, err := device.BuildPulseLibrary(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("  idx  polarity  enc width(us)  dec width(us)  shift(levels)")
	for _, e := range lib {
		if e.Index%4 != 0 {
			continue // print a quarter of the table
		}
		pol := "+1V"
		if e.Enc.Voltage < 0 {
			pol = "-1V"
		}
		fmt.Printf("  %3d  %8s  %13.4f  %13.4f  %12.2f\n",
			e.Index, pol, e.Enc.Width*1e6, e.Dec.Width*1e6, e.Shift)
	}

	fmt.Println("\n== state under a pulse train (ASCII I-t sweep) ==")
	c := device.NewCell(p)
	c.X = 0.5
	train := []device.Pulse{
		{Voltage: 1, Width: 20e-9}, {Voltage: 1, Width: 20e-9},
		{Voltage: -1, Width: 10e-9}, {Voltage: 0.5, Width: 50e-9}, // sub-threshold: no drift
		{Voltage: -1, Width: 15e-9}, {Voltage: 1, Width: 40e-9},
	}
	fmt.Printf("  t=0      x=%.3f %s\n", c.X, bar(c.X))
	for i, pl := range train {
		c.ApplyPulse(pl)
		fmt.Printf("  pulse %d (%+.1fV %4.0fns) x=%.3f %s\n",
			i+1, pl.Voltage, pl.Width*1e9, c.X, bar(c.X))
	}
	fmt.Println("  (the 0.5 V pulse is below Vt=0.75 V and leaves the state untouched)")

	fmt.Println("\n== pinched hysteresis loop (the memristor fingerprint) ==")
	c2 := device.NewCell(p)
	c2.X = 0.5
	pts := c2.IVSweep(1.2, 2e-6, 1, 24)
	fmt.Println("     V(V)     I(uA)   state")
	for i, pt := range pts {
		if i%2 != 0 {
			continue
		}
		fmt.Printf("  %+6.2f  %+8.2f   %.3f\n", pt.V, pt.I*1e6, pt.X)
	}
	fmt.Println("  (the I-V trace crosses the origin but takes different currents on the")
	fmt.Println("   up and down sweeps — the pinched loop that defines a memristor)")
}

func bar(x float64) string {
	n := int(x * 40)
	return "[" + strings.Repeat("#", n) + strings.Repeat("-", 40-n) + "]"
}
