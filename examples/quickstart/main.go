// Quickstart: open a secure NVMM, store a secret, power-cycle, and show
// what an attacker with physical access sees at every stage.
package main

import (
	"bytes"
	"fmt"
	"log"

	"snvmm"
)

func main() {
	dev, err := snvmm.Open(snvmm.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("device ready: %d PoEs per crossbar (= %d-cycle decrypt latency)\n",
		dev.PoECount(), dev.PoECount())

	// Power on: the TPM authenticates the NVMM and releases the key.
	if err := dev.PowerOn(); err != nil {
		log.Fatal(err)
	}
	secret := make([]byte, snvmm.BlockSize)
	copy(secret, []byte("disk-encryption-master-key: hunter2hunter2"))
	if err := dev.Write(0x1000, secret); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote secret block at 0x1000 (encrypted at rest by SPE)")

	// Even while powered, the stored bits are ciphertext.
	dump, err := dev.Steal(0x1000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("raw NVMM bits while running : %x...\n", dump[:16])
	fmt.Printf("contains plaintext fragment? %v\n", bytes.Contains(dump, []byte("hunter2")))

	// Normal reads decrypt transparently.
	back, err := dev.Read(0x1000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read through SPECU          : %q\n", back[:43])

	// Power down: the key evaporates from the SPECU's volatile register.
	if err := dev.PowerOff(); err != nil {
		log.Fatal(err)
	}
	dump, _ = dev.Steal(0x1000)
	fmt.Printf("stolen after power-off      : %x... (ciphertext, key is gone)\n", dump[:16])

	// Instant-on: the same platform boots, re-attests, and reads again.
	if err := dev.PowerOn(); err != nil {
		log.Fatal(err)
	}
	back, err = dev.Read(0x1000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after power cycle           : %q (instant-on preserved)\n", back[:43])
}
