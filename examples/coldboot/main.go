// Cold-boot attack demo (Attack 3, Section 6.4): at power-down every dirty
// cache line must be written back and encrypted before the data is safe.
// This example measures that window on the simulated memory hierarchy and
// compares it with DRAM remanence, then shows what fraction of data an
// attacker sampling the NVMM mid-shutdown could still capture.
package main

import (
	"fmt"
	"log"

	"snvmm/internal/attacks"
	"snvmm/internal/mem"
	"snvmm/internal/secure"
)

func main() {
	// Dirty up the cache hierarchy the way a running system would.
	engine := secure.NewSPESerial(10_000)
	h, err := mem.DefaultHierarchy(engine)
	if err != nil {
		log.Fatal(err)
	}
	var now uint64
	for i := 0; i < 20000; i++ {
		addr := uint64(i%4096) * 64 // 256 KB hot region, repeatedly dirtied
		h.StoreAccess(addr, now)
		h.LoadLatency(addr^0x40000, now)
		now += 7
		if i%100 == 0 {
			h.Mem.Tick(now) // background re-encryption walker
		}
	}
	fmt.Printf("system running: %d dirty L1 lines, %d dirty L2 lines, %.1f%% of NVMM encrypted\n",
		h.L1D.DirtyLines(), h.L2.DirtyLines(), engine.EncryptedFraction()*100)

	// Power-down: flush + encrypt everything.
	dirty, cycles := h.PowerDown(now)
	const cpuHz = 3.2e9
	windowSec := float64(cycles) / cpuHz
	fmt.Printf("power-down: flushed %d dirty lines; window until fully secure: %.3f ms\n",
		dirty, windowSec*1e3)

	// Analytical comparison (the paper's numbers).
	cb := attacks.DefaultColdBoot()
	fmt.Printf("analytical window for a 2 Mb cache: %.2f ms (%.2f us per 64 B block)\n",
		cb.WindowSeconds()*1e3, cb.BlockSeconds()*1e6)
	fmt.Printf("DRAM remanence for comparison: %.1f s -> SPE shrinks the attack window %.0fx\n",
		cb.DRAMRetention, cb.Advantage())

	// An attacker sampling T seconds after power-down initiation captures
	// only the blocks not yet encrypted.
	fmt.Println("\nattacker arrival vs plaintext still exposed:")
	for _, t := range []float64{0, 0.001, 0.002, 0.005, 0.010} {
		remaining := 1 - t/windowSec
		if remaining < 0 {
			remaining = 0
		}
		fmt.Printf("  t = %5.1f ms: %5.1f%% of the flushed data still unencrypted\n",
			t*1e3, remaining*100)
	}
}
