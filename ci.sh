#!/bin/sh
# Tier-1 gate plus the race suite: build, vet, plain tests, then the full
# test set under the race detector (the concurrency tests in internal/core
# and internal/sim only count when they run race-instrumented).
set -eux

go build ./...
go vet ./...
go vet -tags telemetry_debug ./...
go test ./...
go test -race ./...

# Bench smoke: one iteration through the block-crypt benchmarks and the JSON
# emitter, so a bench or tooling regression fails CI without costing real
# benchmark time. -require pins the expected result count per pattern, so a
# renamed benchmark silently matching nothing also fails.
go test ./internal/core -run xxx -bench 'BenchmarkBlock' -benchtime 1x -benchmem \
	| go run ./cmd/benchjson -require 3 -o /dev/null
go test ./internal/poe -run xxx -bench 'BenchmarkPlacement8x8' -benchtime 1x -benchmem \
	| go run ./cmd/benchjson -require 1 -o /dev/null
( go test ./internal/linalg -run xxx -bench 'BenchmarkCholeskyFactor' -benchtime 1x -benchmem ; \
  go test ./internal/xbar -run xxx -bench 'BenchmarkColdCharacterize(8x8|64x64)$' -benchtime 1x -benchmem ) \
	| go run ./cmd/benchjson -require 3 -o /dev/null
go test ./internal/redteam -run xxx -bench . -benchtime 1x -benchmem \
	| go run ./cmd/benchjson -require 4 -o /dev/null

# Telemetry smoke: spe-sim serves /metrics while the concurrency experiment
# runs; the snapshot must be well-formed JSON with live SPECU counters.
tmpdir=$(mktemp -d)
simpid=
trap 'kill $simpid 2>/dev/null || true; rm -rf "$tmpdir"' EXIT
go build -o "$tmpdir/spe-sim" ./cmd/spe-sim

# Batch scheduler matrix: the coalesced batch benches at -cpu 1,4 (2 benches
# x workers {1,4,8} x 2 GOMAXPROCS levels = 12 results). benchjson derives a
# speedup_vs_w1 ratio for every workers>1 result against its workers=1
# sibling at the same -cpu level; on a multi-core runner the workers=4
# ratios must clear 2.5x. On a single-vCPU host (this repo's usual CI box)
# -cpu 4 merely timeslices four goroutines on one core, the pool clamp pins
# real runs to one worker, and the batch path takes its inline fast path by
# design — so the ratio assertion is skipped there rather than asserted
# vacuously. The matrix itself still runs, catching functional regressions.
go test ./internal/core -run xxx -bench 'BenchmarkSPECU(ShardedRead|EncryptBatch)' \
	-benchtime 20x -benchmem -cpu 1,4 \
	| go run ./cmd/benchjson -require 12 -o "$tmpdir/batch_matrix.json"
if [ "$(nproc)" -gt 1 ]; then
	python3 -c '
import json, sys
rep = json.load(open(sys.argv[1]))
ratios = {r["name"]: r["extra"]["speedup_vs_w1"]
          for r in rep["results"] if "speedup_vs_w1" in r.get("extra", {})}
for name in ("BenchmarkSPECUShardedRead/workers=4-4",
             "BenchmarkSPECUEncryptBatch/workers=4-4"):
    assert ratios.get(name, 0.0) >= 2.5, (name, ratios)
' "$tmpdir/batch_matrix.json"
else
	echo "ci: 1 vCPU; skipping batch speedup assertion (pool clamps to one worker)"
fi

# Bench regression gate: the live batch matrix against the committed
# archive. The ns/op bound is deliberately generous (CI boxes differ from
# the archiving machine by integer factors); the allocs/op bound is tight
# because allocation counts are machine-independent — a new allocation on
# the coalesced hot path fails CI even when the wall clock looks fine.
go run ./cmd/benchjson -diff BENCH_specu.json "$tmpdir/batch_matrix.json" \
	-max-regress 500 -max-allocs-regress 25

# Size-wall smoke: a full 32x32 precharacterization must finish inside a
# CI-sane wall clock. Before the locality-truncated sketch path even 24x24
# was unreachable (the dense path needed ~7 s for 16x16 alone and scaled
# as cells^4), and before the hierarchical backend 32x32 took ~3.2 s per
# pass; the budget fails CI if the size wall ever comes back. The JSON
# check also pins the machine-readable report shape and that 32x32 really
# resolves to the hierarchical backend with a bounded Green-table fill.
timeout 300 "$tmpdir/spe-sim" -exp sizewall -rows 32 -cols 32 -json >"$tmpdir/sizewall.json"
python3 -c '
import json, sys
rep = json.load(open(sys.argv[1]))
assert rep["rows"] == rep["cols"] == 32 and rep["path"] == "sketch", rep
assert rep["scaled_slack"] == 248, rep
runs = {r["label"]: r for r in rep["runs"]}
full = runs["full precharacterize"]
assert full["backend"] == "hier", full
assert 0 < full["table_entries"] < full["table_entries_dense"], full
assert full["peak_heap_bytes"] > 0 and full["cells_visited"] > 0, full
' "$tmpdir/sizewall.json"

# Red-team smoke: the adversarial harness must exit 0 with a clean verdict —
# the power-balanced driver statistically silent, the leaky raw driver
# flagged, nothing scraped after a clean PowerOff, and epoch re-encryption
# shrinking the exposure window. The python check pins the JSON shape so a
# report field rename also fails CI.
"$tmpdir/spe-sim" -redteam all >"$tmpdir/redteam.json"
python3 -c '
import json, sys
rep = json.load(open(sys.argv[1]))
assert rep["pass"] and rep["failures"] == [], rep["failures"]
drivers = {r["driver"]: r["leaks"] for r in rep["sidechannel"]}
assert drivers == {"balanced": False, "raw": True}, drivers
scraped = [r["scraped_bytes"] for r in rep["crash"]]
assert scraped[0] > scraped[1] > scraped[2] == 0, scraped
exp = [r["exposure_byte_cycles"] for r in rep["exposure"]]
assert exp[1] < exp[0], exp
' "$tmpdir/redteam.json"

# Causal-trace smoke: a clean-exit traced run must leave a Chrome
# trace-event file that Perfetto would load — parseable JSON, every event
# carrying name/ph/ts, complete events carrying pid/tid/dur, timestamps
# monotone and well-nested per tid, and every recorded parent resolvable.
# (The file is written by a defer, so this run must exit normally, not be
# killed.)
timeout 120 "$tmpdir/spe-sim" -exp concurrency -insts 20000 \
	-trace-out "$tmpdir/trace.json" >/dev/null
python3 -c '
import json, sys
doc = json.load(open(sys.argv[1]))
evs = doc["traceEvents"]
assert evs, "empty trace"
spans, parents, stacks, last = set(), [], {}, {}
for ev in evs:
    assert "name" in ev and "ph" in ev, ev
    if ev["ph"] == "M":
        continue
    assert "ts" in ev and "pid" in ev and "tid" in ev, ev
    tid = ev["tid"]
    assert ev["ts"] >= last.get(tid, 0), ("ts not monotone on tid", ev)
    last[tid] = ev["ts"]
    args = ev.get("args", {})
    if "parent_id" in args:
        parents.append(args["parent_id"])
    if ev["ph"] != "X":
        continue
    spans.add(args["span_id"])
    st = stacks.setdefault(tid, [])
    while st and ev["ts"] >= st[-1]:
        st.pop()
    end = ev["ts"] + ev["dur"]
    assert not st or end <= st[-1] + 1e-6, ("overlap on tid", ev)
    st.append(end)
names = {e["name"] for e in evs}
for want in ("specu.read_batch", "specu.write_batch"):
    assert want in names, (want, names)
missing = [p for p in parents if p not in spans]
assert not missing, ("unresolved parents", missing[:5])
' "$tmpdir/trace.json"

"$tmpdir/spe-sim" -exp concurrency -telemetry-addr 127.0.0.1:0 -telemetry-hold 120s \
	>"$tmpdir/sim.log" 2>&1 &
simpid=$!
addr=
for _ in $(seq 1 100); do
	addr=$(sed -n 's/^telemetry: listening on //p' "$tmpdir/sim.log")
	[ -n "$addr" ] && break
	sleep 0.1
done
test -n "$addr"
ok=
for _ in $(seq 1 120); do
	if curl -fsS "http://$addr/metrics" >"$tmpdir/metrics.json" 2>/dev/null &&
		python3 -c '
import json, sys
snap = json.load(open(sys.argv[1]))
c = snap["counters"]
assert c.get("specu.reads", 0) > 0, c
assert c.get("specu.writes", 0) > 0, c
assert snap["histograms"], "no histograms exported"
fg = snap.get("float_gauges", {})
burn = [k for k in fg if k.startswith("slo.") and k.endswith(".burn_rate")]
assert burn, ("no SLO burn-rate gauges", sorted(fg))
' "$tmpdir/metrics.json" 2>/dev/null; then
		ok=1
		break
	fi
	sleep 0.5
done
test -n "$ok"

# The live /trace endpoint serves the same Chrome JSON, and garbage query
# parameters on the introspection endpoints must 400, never silently
# default.
curl -fsS "http://$addr/trace" >"$tmpdir/trace_live.json"
python3 -c '
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["traceEvents"], "live /trace exported no events"
' "$tmpdir/trace_live.json"
test "$(curl -s -o /dev/null -w '%{http_code}' "http://$addr/spans?max=bogus")" = 400
test "$(curl -s -o /dev/null -w '%{http_code}' "http://$addr/trace?max=-1")" = 400
kill $simpid 2>/dev/null || true
