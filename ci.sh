#!/bin/sh
# Tier-1 gate plus the race suite: build, vet, plain tests, then the full
# test set under the race detector (the concurrency tests in internal/core
# and internal/sim only count when they run race-instrumented).
set -eux

go build ./...
go vet ./...
go test ./...
go test -race ./...

# Bench smoke: one iteration through the block-crypt benchmarks and the JSON
# emitter, so a bench or tooling regression fails CI without costing real
# benchmark time.
go test ./internal/core -run xxx -bench 'BenchmarkBlock' -benchtime 1x -benchmem \
	| go run ./cmd/benchjson -o /dev/null
go test ./internal/poe -run xxx -bench 'BenchmarkPlacement8x8' -benchtime 1x -benchmem \
	| go run ./cmd/benchjson -o /dev/null
( go test ./internal/linalg -run xxx -bench 'BenchmarkCholeskyFactor' -benchtime 1x -benchmem ; \
  go test ./internal/xbar -run xxx -bench 'BenchmarkColdCharacterize8x8' -benchtime 1x -benchmem ) \
	| go run ./cmd/benchjson -o /dev/null
