package snvmm

// Ablation and extension benchmarks (see DESIGN.md "extensions"): the
// PoE-count randomness sweep, the SPE-serial timer trade-off, start-gap
// wear leveling, the ECC substrate, and the future-work non-volatile
// cache model.

import (
	"testing"

	"snvmm/internal/core"
	"snvmm/internal/ecc"
	"snvmm/internal/mem"
	"snvmm/internal/nist"
	"snvmm/internal/nvcache"
	"snvmm/internal/poe"
	"snvmm/internal/secure"
	"snvmm/internal/sim"
	"snvmm/internal/trace"
	"snvmm/internal/wearlevel"
	"snvmm/internal/xbar"
)

// BenchmarkAblationPoECount reproduces the Section 6.1 remark that SPE
// needs >= 16 PoEs: it measures total NIST failures on the low-density
// plaintext data set at 6 vs 16 PoEs.
func BenchmarkAblationPoECount(b *testing.B) {
	cfg := xbar.DefaultConfig()
	spec := nist.DataSetSpec{Sequences: 2, SeqBits: 20000, Seed: 1}
	run := func(k int) int {
		placement, _, err := poe.BestPlacement(cfg, nil, k, 100)
		if err != nil {
			b.Fatal(err)
		}
		params := core.DefaultParams()
		params.PoEs = placement
		eng, err := core.NewEngine(params)
		if err != nil {
			b.Fatal(err)
		}
		seqs, err := nist.NewBuilder(eng).Build(nist.LowDensityPT, spec)
		if err != nil {
			b.Fatal(err)
		}
		br := nist.RunBatch(seqs)
		total := 0
		for _, f := range br.Failures {
			total += f
		}
		return total
	}
	var few, full int
	for i := 0; i < b.N; i++ {
		few = run(6)
		full = run(16)
	}
	b.ReportMetric(float64(few), "failures@6PoE")
	b.ReportMetric(float64(full), "failures@16PoE")
}

// BenchmarkAblationSerialTimer measures the SPE-serial coverage at a short
// and a long re-encryption timer on a reuse-heavy workload.
func BenchmarkAblationSerialTimer(b *testing.B) {
	p, err := trace.ProfileByName("bzip2")
	if err != nil {
		b.Fatal(err)
	}
	var short, long float64
	for i := 0; i < b.N; i++ {
		r1, err := sim.Run(p, secure.NewSPESerial(10_000), 200_000, 1)
		if err != nil {
			b.Fatal(err)
		}
		r2, err := sim.Run(p, secure.NewSPESerial(20_000_000), 200_000, 1)
		if err != nil {
			b.Fatal(err)
		}
		short, long = r1.AvgEncrypted*100, r2.AvgEncrypted*100
	}
	b.ReportMetric(short, "enc%@10k")
	b.ReportMetric(long, "enc%@20M")
}

// BenchmarkWearLeveling measures the start-gap endurance-attack defense.
func BenchmarkWearLeveling(b *testing.B) {
	var leveling float64
	for i := 0; i < b.N; i++ {
		m, err := wearlevel.New(256, 10, 1)
		if err != nil {
			b.Fatal(err)
		}
		res, err := wearlevel.SimulateAttack(m, 7, 20000)
		if err != nil {
			b.Fatal(err)
		}
		leveling = res.Leveling
	}
	b.ReportMetric(leveling, "lifetime-x")
}

// BenchmarkECC measures SECDED encode+decode throughput for one 64-byte
// block (the per-line ECC cost of the Section 3 mitigation).
func BenchmarkECC(b *testing.B) {
	data := make([]byte, 64)
	for i := range data {
		data[i] = byte(i * 37)
	}
	b.SetBytes(64)
	for i := 0; i < b.N; i++ {
		enc, err := ecc.Encode(data)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := ecc.Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNVCache measures the future-work SPE cache with a 512-line
// decrypted buffer on a synthetic stream.
func BenchmarkNVCache(b *testing.B) {
	c, err := nvcache.New(nvcache.Config{
		Cache:         mem.CacheConfig{SizeBytes: 256 << 10, Ways: 8, LineBytes: 64, LatencyCycle: 16},
		DecryptCycles: 16,
		DLBLines:      512,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i%8192)*64, i%7 == 0)
	}
	b.ReportMetric(c.AvgHitLatency(), "avg-hit-cycles")
}
