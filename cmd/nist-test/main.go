// Command nist-test runs the SP 800-22 statistical test suite on binary
// data: a file of raw bytes, a file of ASCII '0'/'1' characters, or the
// built-in coupled-LCG generator (for self-checks).
//
// Usage:
//
//	nist-test -in data.bin [-ascii] [-n 120000] [-seqs 10]
//	nist-test -gen -seed 42 -n 1000000
package main

import (
	"flag"
	"fmt"
	"os"

	"snvmm/internal/nist"
	"snvmm/internal/prng"
)

var (
	inFlag    = flag.String("in", "", "input file (raw bytes, or ASCII with -ascii)")
	asciiFlag = flag.Bool("ascii", false, "input is ASCII '0'/'1' characters")
	genFlag   = flag.Bool("gen", false, "test the built-in keyed PRNG instead of a file")
	seedFlag  = flag.Uint64("seed", 1, "generator seed for -gen")
	nFlag     = flag.Int("n", 120000, "bits per sequence")
	seqsFlag  = flag.Int("seqs", 1, "number of consecutive sequences to test")
)

func main() {
	flag.Parse()
	var bits []uint8
	switch {
	case *genFlag:
		g := prng.NewGen(*seedFlag)
		bits = make([]uint8, *nFlag**seqsFlag)
		g.Bits(bits)
	case *inFlag != "":
		raw, err := os.ReadFile(*inFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *asciiFlag {
			for _, c := range raw {
				switch c {
				case '0':
					bits = append(bits, 0)
				case '1':
					bits = append(bits, 1)
				}
			}
		} else {
			for _, b := range raw {
				for i := 7; i >= 0; i-- {
					bits = append(bits, b>>uint(i)&1)
				}
			}
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
	need := *nFlag * *seqsFlag
	if len(bits) < need {
		fmt.Fprintf(os.Stderr, "need %d bits, have %d\n", need, len(bits))
		os.Exit(1)
	}
	seqs := make([][]uint8, *seqsFlag)
	for i := range seqs {
		seqs[i] = bits[i**nFlag : (i+1)**nFlag]
	}
	if *seqsFlag == 1 {
		res := nist.Suite(seqs[0])
		fmt.Printf("%-10s %-12s %s\n", "test", "p-value", "verdict")
		for _, name := range nist.TestNames {
			r := res[name]
			if !r.Applicable {
				fmt.Printf("%-10s %-12s n/a (sequence too short)\n", name, "-")
				continue
			}
			verdict := "PASS"
			if !r.Pass(nist.Alpha) {
				verdict = "FAIL"
			}
			fmt.Printf("%-10s %-12.6f %s\n", name, r.P[0], verdict)
		}
		return
	}
	br := nist.RunBatch(seqs)
	allowed := nist.MaxAllowedFailures(br.Sequences)
	fmt.Printf("%d sequences x %d bits; allowed failures: %d\n", br.Sequences, *nFlag, allowed)
	fmt.Printf("%-10s %9s %9s\n", "test", "failures", "n/a")
	bad := false
	for _, name := range nist.TestNames {
		fmt.Printf("%-10s %9d %9d\n", name, br.Failures[name], br.Inapplicable[name])
		if br.Failures[name] > allowed {
			bad = true
		}
	}
	if bad {
		fmt.Println("verdict: FAIL")
		os.Exit(1)
	}
	fmt.Println("verdict: PASS")
}
