// Command benchjson converts `go test -bench -benchmem` output on stdin
// into a machine-readable JSON report, so benchmark numbers can be archived
// and diffed across commits (the repo keeps the SPECU hot-path numbers in
// BENCH_specu.json).
//
// Usage:
//
//	go test ./internal/core -bench . -benchmem | benchjson -o BENCH_specu.json
//	benchjson -diff BENCH_specu.json new.json -max-regress 25
//
// Lines that are not benchmark results (headers, PASS/ok trailers) pass
// through to stderr untouched, so the tool can sit at the end of a pipe
// without hiding test failures.
//
// The -diff mode compares two archived reports benchmark-by-benchmark and
// exits nonzero when any shared benchmark regressed by more than
// -max-regress percent in ns/op or -max-allocs-regress percent in
// allocs/op — the CI regression gate. Benchmarks present in only one
// report are skipped (renames don't fail the gate), but zero name overlap
// is an error (a gate comparing nothing must not pass).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result is one benchmark line. Extra holds custom b.ReportMetric units
// (e.g. "byte-cycles/op" from the red-team exposure benchmarks) keyed by
// unit name, so float metrics survive into the archived JSON.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64              `json:"allocs_per_op,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// Report is the emitted document.
type Report struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	out := flag.String("o", "-", "output file (- for stdout)")
	require := flag.Int("require", 1, "fail unless at least this many benchmark results were parsed (guards against a bench pattern silently matching nothing)")
	diff := flag.Bool("diff", false, "compare two archived reports: benchjson -diff old.json new.json [-max-regress PCT] [-max-allocs-regress PCT]")
	flag.Parse()
	if *diff {
		runDiff(flag.Args())
		return
	}

	var rep Report
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseBench(line); ok {
				rep.Results = append(rep.Results, r)
				continue
			}
			fmt.Fprintln(os.Stderr, line)
		default:
			fmt.Fprintln(os.Stderr, line)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading stdin: %v\n", err)
		os.Exit(1)
	}
	if len(rep.Results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	if len(rep.Results) < *require {
		fmt.Fprintf(os.Stderr, "benchjson: parsed %d benchmark results, need at least %d\n", len(rep.Results), *require)
		os.Exit(1)
	}
	deriveSpeedups(rep.Results)
	enc, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// runDiff implements the -diff regression gate. args is everything after
// the parsed top-level flags: two report paths followed by the gate's own
// flags (the standard flag package stops at the first non-flag argument,
// so the thresholds are parsed by a dedicated FlagSet here).
func runDiff(args []string) {
	if len(args) < 2 {
		fmt.Fprintln(os.Stderr, "benchjson: -diff needs two report files: benchjson -diff old.json new.json [-max-regress PCT] [-max-allocs-regress PCT]")
		os.Exit(2)
	}
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	maxNs := fs.Float64("max-regress", 10, "max ns/op regression in percent before the gate fails")
	maxAllocs := fs.Float64("max-allocs-regress", -1, "max allocs/op regression in percent (default: same as -max-regress)")
	fs.Parse(args[2:]) //nolint:errcheck // ExitOnError
	if *maxAllocs < 0 {
		*maxAllocs = *maxNs
	}
	oldRep, err := loadReport(args[0])
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	newRep, err := loadReport(args[1])
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	regressions, compared, err := diffReports(oldRep.Results, newRep.Results, *maxNs, *maxAllocs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("benchjson diff: %d shared benchmarks, thresholds ns/op +%.1f%% allocs/op +%.1f%%\n",
		compared, *maxNs, *maxAllocs)
	if len(regressions) == 0 {
		fmt.Println("benchjson diff: no regressions")
		return
	}
	for _, r := range regressions {
		fmt.Printf("REGRESSION %s\n", r)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) regressed past the gate\n", len(regressions))
	os.Exit(1)
}

func loadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(rep.Results) == 0 {
		return nil, fmt.Errorf("%s: no benchmark results", path)
	}
	return &rep, nil
}

// diffReports compares shared benchmarks and returns one description per
// gate violation plus the number of benchmarks compared. An allocs/op
// count that was zero and became nonzero always violates (a percentage
// threshold is meaningless against a zero base, and losing a zero-alloc
// property is exactly what the gate exists to catch).
func diffReports(oldRes, newRes []Result, maxNsPct, maxAllocsPct float64) ([]string, int, error) {
	base := make(map[string]Result, len(oldRes))
	for _, r := range oldRes {
		base[r.Name] = r
	}
	var regressions []string
	compared := 0
	for _, nw := range newRes {
		od, ok := base[nw.Name]
		if !ok {
			continue
		}
		compared++
		if od.NsPerOp > 0 && nw.NsPerOp > 0 {
			pct := (nw.NsPerOp - od.NsPerOp) / od.NsPerOp * 100
			if pct > maxNsPct {
				regressions = append(regressions,
					fmt.Sprintf("%s: ns/op %.1f -> %.1f (+%.1f%%, limit +%.1f%%)",
						nw.Name, od.NsPerOp, nw.NsPerOp, pct, maxNsPct))
			}
		}
		switch {
		case od.AllocsPerOp == 0 && nw.AllocsPerOp > 0:
			regressions = append(regressions,
				fmt.Sprintf("%s: allocs/op 0 -> %d (zero-alloc property lost)",
					nw.Name, nw.AllocsPerOp))
		case od.AllocsPerOp > 0:
			pct := float64(nw.AllocsPerOp-od.AllocsPerOp) / float64(od.AllocsPerOp) * 100
			if pct > maxAllocsPct {
				regressions = append(regressions,
					fmt.Sprintf("%s: allocs/op %d -> %d (+%.1f%%, limit +%.1f%%)",
						nw.Name, od.AllocsPerOp, nw.AllocsPerOp, pct, maxAllocsPct))
			}
		}
	}
	if compared == 0 {
		return nil, 0, fmt.Errorf("no benchmark names shared between the two reports; the gate compared nothing")
	}
	return regressions, compared, nil
}

var workersRe = regexp.MustCompile(`workers=(\d+)`)

// deriveSpeedups adds a "speedup_vs_w1" Extra metric to every result whose
// name carries a workers=N>1 sub-benchmark label and whose workers=1
// sibling (same name with the label substituted, including the same -cpu
// suffix) is present in the batch: the throughput ratio the CI bench
// matrix asserts on multi-core runners. Results without a sibling are left
// untouched.
func deriveSpeedups(results []Result) {
	base := make(map[string]float64, len(results))
	for _, r := range results {
		if m := workersRe.FindStringSubmatch(r.Name); m != nil && m[1] == "1" && r.NsPerOp > 0 {
			base[r.Name] = r.NsPerOp
		}
	}
	if len(base) == 0 {
		return
	}
	for i := range results {
		r := &results[i]
		m := workersRe.FindStringSubmatch(r.Name)
		if m == nil || m[1] == "1" || r.NsPerOp <= 0 {
			continue
		}
		w1, ok := base[workersRe.ReplaceAllString(r.Name, "workers=1")]
		if !ok {
			continue
		}
		if r.Extra == nil {
			r.Extra = map[string]float64{}
		}
		r.Extra["speedup_vs_w1"] = w1 / r.NsPerOp
	}
}

// parseBench parses one benchmark result line of the form
//
//	BenchmarkName-8   100   79031 ns/op   8381 B/op   53 allocs/op
func parseBench(line string) (Result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || f[3] != "ns/op" {
		return Result{}, false
	}
	iters, err1 := strconv.ParseInt(f[1], 10, 64)
	ns, err2 := strconv.ParseFloat(f[2], 64)
	if err1 != nil || err2 != nil {
		return Result{}, false
	}
	r := Result{Name: f[0], Iterations: iters, NsPerOp: ns}
	for i := 4; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			continue
		}
		switch f[i+1] {
		case "B/op":
			r.BytesPerOp = int64(v)
		case "allocs/op":
			r.AllocsPerOp = int64(v)
		default:
			if r.Extra == nil {
				r.Extra = map[string]float64{}
			}
			r.Extra[f[i+1]] = v
		}
	}
	return r, true
}
