// Command benchjson converts `go test -bench -benchmem` output on stdin
// into a machine-readable JSON report, so benchmark numbers can be archived
// and diffed across commits (the repo keeps the SPECU hot-path numbers in
// BENCH_specu.json).
//
// Usage:
//
//	go test ./internal/core -bench . -benchmem | benchjson -o BENCH_specu.json
//
// Lines that are not benchmark results (headers, PASS/ok trailers) pass
// through to stderr untouched, so the tool can sit at the end of a pipe
// without hiding test failures.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result is one benchmark line. Extra holds custom b.ReportMetric units
// (e.g. "byte-cycles/op" from the red-team exposure benchmarks) keyed by
// unit name, so float metrics survive into the archived JSON.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64              `json:"allocs_per_op,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// Report is the emitted document.
type Report struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	out := flag.String("o", "-", "output file (- for stdout)")
	require := flag.Int("require", 1, "fail unless at least this many benchmark results were parsed (guards against a bench pattern silently matching nothing)")
	flag.Parse()

	var rep Report
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseBench(line); ok {
				rep.Results = append(rep.Results, r)
				continue
			}
			fmt.Fprintln(os.Stderr, line)
		default:
			fmt.Fprintln(os.Stderr, line)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading stdin: %v\n", err)
		os.Exit(1)
	}
	if len(rep.Results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	if len(rep.Results) < *require {
		fmt.Fprintf(os.Stderr, "benchjson: parsed %d benchmark results, need at least %d\n", len(rep.Results), *require)
		os.Exit(1)
	}
	deriveSpeedups(rep.Results)
	enc, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

var workersRe = regexp.MustCompile(`workers=(\d+)`)

// deriveSpeedups adds a "speedup_vs_w1" Extra metric to every result whose
// name carries a workers=N>1 sub-benchmark label and whose workers=1
// sibling (same name with the label substituted, including the same -cpu
// suffix) is present in the batch: the throughput ratio the CI bench
// matrix asserts on multi-core runners. Results without a sibling are left
// untouched.
func deriveSpeedups(results []Result) {
	base := make(map[string]float64, len(results))
	for _, r := range results {
		if m := workersRe.FindStringSubmatch(r.Name); m != nil && m[1] == "1" && r.NsPerOp > 0 {
			base[r.Name] = r.NsPerOp
		}
	}
	if len(base) == 0 {
		return
	}
	for i := range results {
		r := &results[i]
		m := workersRe.FindStringSubmatch(r.Name)
		if m == nil || m[1] == "1" || r.NsPerOp <= 0 {
			continue
		}
		w1, ok := base[workersRe.ReplaceAllString(r.Name, "workers=1")]
		if !ok {
			continue
		}
		if r.Extra == nil {
			r.Extra = map[string]float64{}
		}
		r.Extra["speedup_vs_w1"] = w1 / r.NsPerOp
	}
}

// parseBench parses one benchmark result line of the form
//
//	BenchmarkName-8   100   79031 ns/op   8381 B/op   53 allocs/op
func parseBench(line string) (Result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || f[3] != "ns/op" {
		return Result{}, false
	}
	iters, err1 := strconv.ParseInt(f[1], 10, 64)
	ns, err2 := strconv.ParseFloat(f[2], 64)
	if err1 != nil || err2 != nil {
		return Result{}, false
	}
	r := Result{Name: f[0], Iterations: iters, NsPerOp: ns}
	for i := 4; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			continue
		}
		switch f[i+1] {
		case "B/op":
			r.BytesPerOp = int64(v)
		case "allocs/op":
			r.AllocsPerOp = int64(v)
		default:
			if r.Extra == nil {
				r.Extra = map[string]float64{}
			}
			r.Extra[f[i+1]] = v
		}
	}
	return r, true
}
