package main

import (
	"strings"
	"testing"
)

func TestDiffReportsNoRegression(t *testing.T) {
	old := []Result{
		{Name: "BenchmarkRead", NsPerOp: 1000, AllocsPerOp: 40},
		{Name: "BenchmarkWrite", NsPerOp: 2000, AllocsPerOp: 0},
	}
	nw := []Result{
		{Name: "BenchmarkRead", NsPerOp: 1050, AllocsPerOp: 42},
		{Name: "BenchmarkWrite", NsPerOp: 1900, AllocsPerOp: 0},
	}
	regs, compared, err := diffReports(old, nw, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	if compared != 2 {
		t.Errorf("compared = %d, want 2", compared)
	}
	if len(regs) != 0 {
		t.Errorf("unexpected regressions: %v", regs)
	}
}

func TestDiffReportsNsRegression(t *testing.T) {
	old := []Result{{Name: "BenchmarkRead", NsPerOp: 1000}}
	nw := []Result{{Name: "BenchmarkRead", NsPerOp: 1500}}
	regs, _, err := diffReports(old, nw, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || !strings.Contains(regs[0], "ns/op") {
		t.Fatalf("want one ns/op regression, got %v", regs)
	}
}

func TestDiffReportsAllocsRegression(t *testing.T) {
	old := []Result{{Name: "BenchmarkRead", NsPerOp: 1000, AllocsPerOp: 40}}
	nw := []Result{{Name: "BenchmarkRead", NsPerOp: 1000, AllocsPerOp: 60}}
	regs, _, err := diffReports(old, nw, 100, 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || !strings.Contains(regs[0], "allocs/op") {
		t.Fatalf("want one allocs/op regression, got %v", regs)
	}
}

func TestDiffReportsZeroAllocLost(t *testing.T) {
	// A zero allocs/op base makes a percentage threshold meaningless; any
	// growth from zero must trip the gate regardless of how generous it is.
	old := []Result{{Name: "BenchmarkHot", NsPerOp: 500, AllocsPerOp: 0}}
	nw := []Result{{Name: "BenchmarkHot", NsPerOp: 500, AllocsPerOp: 1}}
	regs, _, err := diffReports(old, nw, 1000, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || !strings.Contains(regs[0], "zero-alloc") {
		t.Fatalf("want zero-alloc violation, got %v", regs)
	}
}

func TestDiffReportsSkipsUnshared(t *testing.T) {
	old := []Result{
		{Name: "BenchmarkGone", NsPerOp: 100},
		{Name: "BenchmarkKept", NsPerOp: 100},
	}
	nw := []Result{
		{Name: "BenchmarkKept", NsPerOp: 100},
		{Name: "BenchmarkNew", NsPerOp: 1e9}, // no baseline: never gated
	}
	regs, compared, err := diffReports(old, nw, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	if compared != 1 {
		t.Errorf("compared = %d, want 1", compared)
	}
	if len(regs) != 0 {
		t.Errorf("unexpected regressions: %v", regs)
	}
}

func TestDiffReportsNoOverlap(t *testing.T) {
	old := []Result{{Name: "BenchmarkA", NsPerOp: 100}}
	nw := []Result{{Name: "BenchmarkB", NsPerOp: 100}}
	if _, _, err := diffReports(old, nw, 10, 10); err == nil {
		t.Fatal("zero name overlap must be an error, not a passing gate")
	}
}
