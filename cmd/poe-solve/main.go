// Command poe-solve runs the Table 1 ILP: find a minimum set of points of
// encryption whose polyominoes cover every cell of a crossbar with bounded
// overlap.
//
// Usage:
//
//	poe-solve -rows 8 -cols 8 -s 56
//	poe-solve -rows 16 -cols 16 -s 0 -maxcover 2
package main

import (
	"flag"
	"fmt"
	"os"

	"snvmm/internal/poe"
	"snvmm/internal/xbar"
)

var (
	rowsFlag  = flag.Int("rows", 8, "crossbar rows")
	colsFlag  = flag.Int("cols", 8, "crossbar columns")
	sFlag     = flag.Int("s", 56, "security slack S (Table 1)")
	coverFlag = flag.Int("maxcover", 2, "per-cell overlap cap")
	vertFlag  = flag.Int("vert", 4, "polyomino vertical reach")
	horizFlag = flag.Int("horiz", 1, "polyomino horizontal reach")
	nodesFlag = flag.Int("maxnodes", 200000, "branch-and-bound node limit")
)

func main() {
	flag.Parse()
	cfg := xbar.DefaultConfig()
	cfg.Rows, cfg.Cols = *rowsFlag, *colsFlag
	cfg.VertReach, cfg.HorizReach = *vertFlag, *horizFlag
	res, err := poe.Solve(poe.Spec{
		Cfg: cfg, S: *sFlag, MaxCover: *coverFlag, MaxNodes: *nodesFlag,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	st := poe.StatsOf(cfg, cfg.PaperShape, res.PoEs)
	fmt.Printf("%dx%d crossbar, S=%d, max cover %d\n", cfg.Rows, cfg.Cols, *sFlag, *coverFlag)
	fmt.Printf("PoEs: %d (optimal proven: %v)\n", len(res.PoEs), res.Optimal)
	fmt.Printf("coverage: %d single, %d overlapped, %d uncovered, total %d\n",
		st.Single, st.Overlapped, st.Uncovered, st.TotalCover)
	grid := make([][]byte, cfg.Rows)
	for r := range grid {
		grid[r] = make([]byte, cfg.Cols)
		for c := range grid[r] {
			grid[r][c] = '.'
		}
	}
	for _, p := range res.PoEs {
		grid[p.Row][p.Col] = 'P'
	}
	fmt.Println("placement (P = PoE):")
	for _, row := range grid {
		fmt.Println(string(row))
	}
}
