// Command poe-solve runs the Table 1 ILP: find a minimum set of points of
// encryption whose polyominoes cover every cell of a crossbar with bounded
// overlap.
//
// Usage:
//
//	poe-solve -rows 8 -cols 8 -s 56
//	poe-solve -rows 16 -cols 16 -s 0 -maxcover 2 -workers 8 -timeout 30s
//	poe-solve -rows 16 -cols 16 -json
//
// The exit status is non-zero only when no feasible placement exists (or the
// arguments are invalid). Hitting the node limit or the timeout with a
// feasible-but-unproven placement still exits 0; the output marks the
// placement as unproven and reports the remaining optimality gap.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"snvmm/internal/poe"
	"snvmm/internal/telemetry"
	"snvmm/internal/xbar"
)

var (
	rowsFlag    = flag.Int("rows", 8, "crossbar rows")
	colsFlag    = flag.Int("cols", 8, "crossbar columns")
	sFlag       = flag.Int("s", 56, "security slack S (Table 1)")
	coverFlag   = flag.Int("maxcover", 2, "per-cell overlap cap")
	vertFlag    = flag.Int("vert", 4, "polyomino vertical reach")
	horizFlag   = flag.Int("horiz", 1, "polyomino horizontal reach")
	nodesFlag   = flag.Int("maxnodes", 200000, "branch-and-bound node limit")
	workersFlag = flag.Int("workers", 0, "parallel solver workers (0 = GOMAXPROCS)")
	timeoutFlag = flag.Duration("timeout", 0, "wall-clock limit (0 = none); best placement so far is printed on expiry")
	jsonFlag    = flag.Bool("json", false, "emit the result as JSON on stdout")
)

// jsonResult is the -json output schema.
type jsonResult struct {
	Rows      int         `json:"rows"`
	Cols      int         `json:"cols"`
	S         int         `json:"s"`
	MaxCover  int         `json:"max_cover"`
	PoEs      []xbar.Cell `json:"poes"`
	Optimal   bool        `json:"optimal"`
	Nodes     int64       `json:"nodes"`
	BestBound float64     `json:"best_bound"`
	Gap       float64     `json:"gap"`
	WallMS    float64     `json:"wall_ms"`
	Stats     poe.Stats   `json:"coverage"`

	// Work distribution of the parallel search, plus the full registry
	// snapshot of the run (ilp.* instruments).
	Steals           []int64             `json:"steals"`
	IncumbentUpdates int64               `json:"incumbent_updates"`
	Telemetry        *telemetry.Snapshot `json:"telemetry,omitempty"`
}

func main() {
	flag.Parse()
	cfg := xbar.DefaultConfig()
	cfg.Rows, cfg.Cols = *rowsFlag, *colsFlag
	cfg.VertReach, cfg.HorizReach = *vertFlag, *horizFlag

	ctx := context.Background()
	if *timeoutFlag > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeoutFlag)
		defer cancel()
	}
	var reg *telemetry.Registry
	if *jsonFlag {
		reg = telemetry.New()
	}
	start := time.Now()
	res, err := poe.SolveContext(ctx, poe.Spec{
		Cfg: cfg, S: *sFlag, MaxCover: *coverFlag,
		MaxNodes: *nodesFlag, Workers: *workersFlag,
		Telemetry: reg,
	})
	wall := time.Since(start)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	st := poe.StatsOf(cfg, cfg.PaperShape, res.PoEs)

	if *jsonFlag {
		snap := reg.Snapshot()
		out := jsonResult{
			Rows: cfg.Rows, Cols: cfg.Cols, S: *sFlag, MaxCover: *coverFlag,
			PoEs: res.PoEs, Optimal: res.Optimal,
			Nodes: res.Nodes, BestBound: res.BestBound, Gap: res.Gap,
			WallMS: float64(wall.Microseconds()) / 1000,
			Stats:  st,
			Steals: res.Steals, IncumbentUpdates: res.IncumbentUpdates,
			Telemetry: &snap,
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("%dx%d crossbar, S=%d, max cover %d\n", cfg.Rows, cfg.Cols, *sFlag, *coverFlag)
	if res.Optimal {
		fmt.Printf("PoEs: %d (proven optimal)\n", len(res.PoEs))
	} else {
		fmt.Printf("PoEs: %d (UNPROVEN: best bound %.2f, gap %.1f%%)\n",
			len(res.PoEs), res.BestBound, res.Gap*100)
	}
	fmt.Printf("nodes: %d, wall time: %v\n", res.Nodes, wall.Round(time.Millisecond))
	fmt.Printf("coverage: %d single, %d overlapped, %d uncovered, total %d\n",
		st.Single, st.Overlapped, st.Uncovered, st.TotalCover)
	grid := make([][]byte, cfg.Rows)
	for r := range grid {
		grid[r] = make([]byte, cfg.Cols)
		for c := range grid[r] {
			grid[r][c] = '.'
		}
	}
	for _, p := range res.PoEs {
		grid[p.Row][p.Col] = 'P'
	}
	fmt.Println("placement (P = PoE):")
	for _, row := range grid {
		fmt.Println(string(row))
	}
}
