package main

import (
	"fmt"

	"snvmm/internal/core"
	"snvmm/internal/mem"
	"snvmm/internal/nist"
	"snvmm/internal/nvcache"
	"snvmm/internal/poe"
	"snvmm/internal/secure"
	"snvmm/internal/sim"
	"snvmm/internal/trace"
	"snvmm/internal/wearlevel"
	"snvmm/internal/xbar"
)

// poesweep is the ablation behind the paper's Section 6.1 remark: "Initial
// tests using SPE with fewer than 16 PoEs fail a large number of tests."
// It runs a reduced NIST batch against engines with 8..16 PoEs.
func poesweep() error {
	cfg := xbar.DefaultConfig()
	spec := nist.DataSetSpec{Sequences: *seqsFlag, SeqBits: *bitsFlag, Seed: *seedFlag}
	fmt.Printf("%5s %10s %12s %14s %10s   (%d seqs x %d bits, low-density-PT data set)\n",
		"PoEs", "failures", "worst test", "single-covered", "uncovered", spec.Sequences, spec.SeqBits)
	for _, k := range []int{4, 6, 8, 10, 12, 14, 16} {
		placement, st, err := poe.BestPlacement(cfg, nil, k, 200)
		if err != nil {
			return err
		}
		params := core.DefaultParams()
		params.PoEs = placement
		eng, err := core.NewEngine(params)
		if err != nil {
			return err
		}
		seqs, err := nist.NewBuilder(eng).Build(nist.LowDensityPT, spec)
		if err != nil {
			return err
		}
		br := nist.RunBatch(seqs)
		total, worst, worstN := 0, "", 0
		for _, name := range nist.TestNames {
			total += br.Failures[name]
			if br.Failures[name] > worstN {
				worstN = br.Failures[name]
				worst = name
			}
		}
		if worst == "" {
			worst = "-"
		}
		fmt.Printf("%5d %10d %12s %14d %10d\n", k, total, worst, st.Single, st.Uncovered)
	}
	fmt.Println("paper: below 16 PoEs single-covered cells appear and NIST failures rise;")
	fmt.Println("randomness increases with the number of overlapping polyominos.")
	return nil
}

// timersweep traces the SPE-serial re-encryption-timer trade-off that
// separates Fig. 7 (overhead) from Fig. 8 (coverage).
func timersweep() error {
	p, err := trace.ProfileByName("bzip2") // hot set exceeds L2: NVMM re-reads exist
	if err != nil {
		return err
	}
	insts := *instFlag / 2
	base, err := sim.Run(p, secure.NewPlain(), insts, *seedFlag)
	if err != nil {
		return err
	}
	fmt.Printf("%14s %10s %11s   (SPE-serial on %s, %d insts)\n",
		"timer(cycles)", "overhead", "encrypted", p.Name, insts)
	for _, timer := range []uint64{1_000, 10_000, 100_000, 1_000_000, 5_000_000, 20_000_000} {
		r, err := sim.Run(p, secure.NewSPESerial(timer), insts, *seedFlag)
		if err != nil {
			return err
		}
		ov := (base.IPC - r.IPC) / base.IPC * 100
		fmt.Printf("%14d %9.2f%% %10.1f%%\n", timer, ov, r.AvgEncrypted*100)
	}
	fmt.Println("short timers buy coverage (Fig. 8's 99.4%) at the cost of re-paying the")
	fmt.Println("16-cycle decrypt on NVMM re-reads; long timers converge to i-NVMM behaviour.")
	return nil
}

// wearlevelExp reproduces the start-gap endurance-attack defense the paper
// cites ([6]) as the response to Section 3's write-endurance attacks.
func wearlevelExp() error {
	const limit = 10_000
	const lines = 256
	fmt.Printf("endurance attack: hammer one address until a line exceeds %d writes\n", limit)
	fmt.Printf("%-22s %14s %10s\n", "configuration", "writes absorbed", "lifetime")
	fmt.Printf("%-22s %14d %9.1fx\n", "no wear leveling", limit, 1.0)
	for _, interval := range []int{200, 100, 50, 10} {
		m, err := wearlevel.New(lines, interval, uint64(*seedFlag))
		if err != nil {
			return err
		}
		res, err := wearlevel.SimulateAttack(m, 7, limit)
		if err != nil {
			return err
		}
		fmt.Printf("start-gap psi=%-9d %14d %9.1fx\n", interval, res.TotalWrites, res.Leveling)
	}
	fmt.Printf("(ideal leveling bound for %d lines: %.0fx)\n", lines, float64(lines))
	fmt.Println("note: against a *targeted* attack start-gap only helps once the per-line")
	fmt.Println("dwell (n+1)*psi drops below the endurance limit — the known weakness that")
	fmt.Println("motivated the follow-up security-refresh schemes.")
	return nil
}

// nvcacheExp runs the future-work study: SPE on a non-volatile L2 with a
// decrypted-line buffer, sweeping the buffer size.
func nvcacheExp() error {
	mk := func(dlb int) (*nvcache.Cache, error) {
		return nvcache.New(nvcache.Config{
			Cache:         mem.CacheConfig{SizeBytes: 2 << 20, Ways: 16, LineBytes: 64, LatencyCycle: 16},
			DecryptCycles: 16,
			DLBLines:      dlb,
		})
	}
	p, err := trace.ProfileByName("gcc")
	if err != nil {
		return err
	}
	gen, err := trace.NewGenerator(p, *seedFlag)
	if err != nil {
		return err
	}
	// Extract a data-address stream from the workload.
	var addrs []uint64
	for len(addrs) < 300_000 {
		inst, _ := gen.Next()
		if inst.Addr != 0 {
			addrs = append(addrs, inst.Addr)
		}
	}
	fmt.Printf("%10s %14s %12s %14s %16s\n",
		"DLB lines", "avg hit (cyc)", "array hits", "exposure lines", "powerdown (cyc)")
	for _, dlb := range []int{0, 64, 512, 4096, 32768} {
		c, err := mk(dlb)
		if err != nil {
			return err
		}
		for _, a := range addrs {
			c.Access(a, false)
		}
		exposure := c.PlaintextLines()
		fmt.Printf("%10d %14.2f %12d %14d %16d\n",
			dlb, c.AvgHitLatency(), c.ArrayHits, exposure, c.PowerDownCycles())
	}
	// Full-system view: IPC with the NV L2 in the hierarchy.
	fmt.Printf("\nfull-system (%s, %d insts):\n", p.Name, *instFlag/2)
	fmt.Printf("%10s %8s %14s %12s %12s\n", "DLB lines", "IPC", "avg L2 hit", "array hits", "buffer hits")
	for _, dlb := range []int{0, 512, 4096, 32768} {
		r, err := sim.RunNVCache(p, dlb, *instFlag/2, *seedFlag)
		if err != nil {
			return err
		}
		fmt.Printf("%10d %8.4f %14.2f %12d %12d\n", dlb, r.IPC, r.AvgL2Hit, r.ArrayHits, r.BufferHits)
	}
	fmt.Println("future work (Section 8): a small decrypted-line buffer hides most of the")
	fmt.Println("16-cycle pulse latency while keeping the at-rest array ciphertext; the")
	fmt.Println("buffer is the cold-boot exposure, re-encrypted in microseconds at power-off.")
	return nil
}
