package main

import (
	"encoding/json"
	"fmt"
	"os"

	"snvmm/internal/redteam"
	"snvmm/internal/secure"
	"snvmm/internal/trace"
	"snvmm/internal/xbar"
)

// The -redteam runner mounts the adversarial scenarios against a freshly
// built engine and emits one JSON report on stdout; the process exits
// nonzero if any defense fails its assertion, so CI can gate on it.
//
//	spe-sim -redteam sidechannel     TVLA fixed-vs-random trace distinguisher
//	spe-sim -redteam crash           crash injection + exposure windows
//	spe-sim -redteam all             both
//
// -redteam-script replaces the canonical crash schedule with a parsed
// workload script (see internal/trace.ParseWorkload for the grammar).

// redteamOutput is the JSON document the runner prints.
type redteamOutput struct {
	SideChannel []*redteam.SideChannelReport `json:"sidechannel,omitempty"`
	Crash       []*redteam.CrashReport       `json:"crash,omitempty"`
	Exposure    []*redteam.ExposureReport    `json:"exposure,omitempty"`
	Failures    []string                     `json:"failures"`
	Pass        bool                         `json:"pass"`
}

func runRedteam(which, scriptPath string) error {
	out := &redteamOutput{Failures: []string{}}
	fail := func(format string, args ...any) {
		out.Failures = append(out.Failures, fmt.Sprintf(format, args...))
	}
	eng, err := engine()
	if err != nil {
		return err
	}

	if which == "sidechannel" || which == "all" {
		for _, mode := range []xbar.TraceMode{xbar.TraceBalanced, xbar.TraceRaw} {
			rep, err := redteam.RunSideChannel(eng, redteam.SideChannelConfig{
				Mode: mode, Seed: *seedFlag, ScopeNoise: 0.01,
			})
			if err != nil {
				return err
			}
			out.SideChannel = append(out.SideChannel, rep)
			if mode == xbar.TraceBalanced && rep.Leaks {
				fail("balanced driver leaks (corrected p = %g < %g)", rep.CorrectedP, rep.Alpha)
			}
			if mode == xbar.TraceRaw && !rep.Leaks {
				fail("raw driver not flagged (corrected p = %g >= %g)", rep.CorrectedP, rep.Alpha)
			}
		}
	}

	if which == "crash" || which == "all" {
		points := []redteam.CrashPoint{
			redteam.CrashBetweenBatches, redteam.CrashMidFlush, redteam.CrashDuringPowerOff,
		}
		var scraped []uint64
		for _, p := range points {
			rep, err := redteam.RunCrash(eng, redteam.CrashConfig{Point: p, Blocks: 8, Seed: *seedFlag})
			if err != nil {
				return err
			}
			out.Crash = append(out.Crash, rep)
			scraped = append(scraped, rep.ScrapedBytes)
		}
		if scraped[2] != 0 {
			fail("scrape after PowerOff recovered %d bytes", scraped[2])
		}
		if !(scraped[0] > scraped[1] && scraped[1] > scraped[2]) {
			fail("crash haul not strictly shrinking along the shutdown path: %v", scraped)
		}

		script := redteam.DefaultCrashScript(64)
		if scriptPath != "" {
			src, err := os.ReadFile(scriptPath)
			if err != nil {
				return err
			}
			if script, err = trace.ParseWorkload(src); err != nil {
				return err
			}
		}
		for _, epoch := range []uint64{0, 500} {
			e := secure.NewSPESerial(1 << 40)
			e.EpochCycles = epoch
			rep, err := redteam.RunExposure(e, script)
			if err != nil {
				return err
			}
			out.Exposure = append(out.Exposure, rep)
		}
		if n := len(out.Exposure); n >= 2 &&
			out.Exposure[n-1].ExposureByteCycles >= out.Exposure[n-2].ExposureByteCycles {
			fail("epoch re-encryption did not shrink the exposure window (%d >= %d byte·cycles)",
				out.Exposure[n-1].ExposureByteCycles, out.Exposure[n-2].ExposureByteCycles)
		}
	}

	if which != "sidechannel" && which != "crash" && which != "all" {
		return fmt.Errorf("unknown redteam scenario %q (sidechannel | crash | all)", which)
	}

	out.Pass = len(out.Failures) == 0
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return err
	}
	if !out.Pass {
		return fmt.Errorf("redteam: %d assertion(s) failed", len(out.Failures))
	}
	return nil
}
