// Command spe-sim regenerates every table and figure of the paper's
// evaluation. Each experiment prints the rows/series the paper reports,
// alongside the paper's published values where applicable.
//
// Usage:
//
//	spe-sim -exp list
//	spe-sim -exp fig7 [-insts 2000000]
//	spe-sim -exp table2 [-full] [-seqs 10 -bits 20000]
//	spe-sim -exp all
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"snvmm/internal/attacks"
	"snvmm/internal/circuit"
	"snvmm/internal/core"
	"snvmm/internal/device"
	"snvmm/internal/linalg"
	"snvmm/internal/nist"
	"snvmm/internal/poe"
	"snvmm/internal/prng"
	"snvmm/internal/secure"
	"snvmm/internal/sim"
	"snvmm/internal/telemetry"
	"snvmm/internal/telemetry/slo"
	ctrace "snvmm/internal/telemetry/trace"
	"snvmm/internal/trace"
	"snvmm/internal/xbar"
)

var (
	expFlag     = flag.String("exp", "list", "experiment to run (list | all | fig2 | fig4 | fig5 | fig6 | montecarlo | table1 | table2 | bruteforce | coldboot | fig7 | fig8 | table3 | poesweep | timersweep | wearlevel | nvcache | concurrency | batchsweep | sizewall | redteam)")
	fullFlag    = flag.Bool("full", false, "run at paper scale (slow)")
	instFlag    = flag.Int64("insts", 1_000_000, "instructions per workload for fig7/fig8/table3")
	seqsFlag    = flag.Int("seqs", 10, "sequences per data set for table2")
	bitsFlag    = flag.Int("bits", 20000, "bits per sequence for table2")
	seedFlag    = flag.Int64("seed", 1, "master seed")
	workerFlag  = flag.Int("workers", 1, "goroutines for the fig7/fig8/table3 sweep and the montecarlo sampler (>1 fans independent runs out in parallel)")
	precharFlag = flag.Bool("precharacterize", false, "run the full-device SPECU characterization eagerly at engine power-on (WarmAll across all PoEs) before the experiment")
	cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile of the experiment run to this file")
	memProfile  = flag.String("memprofile", "", "write a heap profile (after the run) to this file")
	telAddr     = flag.String("telemetry-addr", "", "serve the live introspection endpoint (/metrics, /spans, /trace, /debug/pprof) on this TCP address (e.g. 127.0.0.1:0); empty disables telemetry")
	telHold     = flag.Duration("telemetry-hold", 0, "keep the telemetry endpoint alive this long after the experiment finishes (lets scrapers catch the final state)")
	traceOut    = flag.String("trace-out", "", "write the causal trace of the run as Chrome trace-event JSON (load in Perfetto) to this file; also enables tracing without -telemetry-addr")
	traceBuf    = flag.Int("trace-buf", ctrace.DefaultRingSize, "causal-trace ring capacity in spans (rounded up to a power of two; oldest spans overwritten)")
	verboseFlag = flag.Bool("v", false, "print per-simulation progress during sweeps")
	rtFlag      = flag.String("redteam", "", "run an adversarial scenario and emit a JSON verdict (sidechannel | crash | all); exits nonzero if a defense fails")
	rtScript    = flag.String("redteam-script", "", "workload script driving the redteam exposure measurement (default: built-in crash schedule)")
	rowsFlag    = flag.Int("rows", 24, "crossbar rows for the sizewall experiment")
	colsFlag    = flag.Int("cols", 24, "crossbar cols for the sizewall experiment")
	batchFlag   = flag.Int("batch-size", 64, "ops per batch for the batchsweep experiment")
	jsonFlag    = flag.Bool("json", false, "emit the sizewall/batchsweep results as one JSON object on stdout (machine-comparable across runs)")
)

// telReg is non-nil when -telemetry-addr is set; a nil registry is inert,
// so experiment code passes it around unconditionally. The same discipline
// holds for the causal tracer (non-nil when -trace-out or -telemetry-addr
// is set) and the SLO engine (non-nil alongside telReg).
var (
	telReg *telemetry.Registry
	tracer *ctrace.Tracer
	sloEng *slo.Engine
)

// sloObjectives are the default service objectives of the simulated data
// path: every op class should complete in 10 ms with at most 0.1% of ops
// over target, judged on a 10 s rolling window.
func sloObjectives() []slo.Objective {
	objs := make([]slo.Objective, 0, 4)
	for _, class := range []string{"read", "write", "encrypt", "decrypt"} {
		objs = append(objs, slo.Objective{
			Class:      class,
			TargetNs:   10 * time.Millisecond.Nanoseconds(),
			BudgetFrac: 1e-3,
			Window:     10 * time.Second,
		})
	}
	return objs
}

// writeTraceOut flushes the causal trace ring to -trace-out as Chrome
// trace-event JSON.
func writeTraceOut() {
	f, err := os.Create(*traceOut)
	if err != nil {
		fmt.Fprintf(os.Stderr, "trace-out: %v\n", err)
		return
	}
	defer f.Close()
	if err := tracer.WriteChrome(f, tracer.Cap()); err != nil {
		fmt.Fprintf(os.Stderr, "trace-out: %v\n", err)
		return
	}
	fmt.Printf("trace: wrote %s (load at https://ui.perfetto.dev)\n", *traceOut)
}

type experiment struct {
	name string
	desc string
	run  func() error
}

func main() {
	flag.Parse()
	if *traceOut != "" || *telAddr != "" {
		tracer = ctrace.New(*traceBuf)
		xbar.SetTracer(tracer)
	}
	if *telAddr != "" {
		telReg = telemetry.New()
		telReg.PublishExpvar("snvmm")
		xbar.SetTelemetry(telReg)
		linalg.SetTelemetry(telReg)
		circuit.SetTelemetry(telReg)
		sloEng = slo.New(telReg, sloObjectives()...)
		telReg.OnSnapshot(sloEng.Refresh)
		ln, err := net.Listen("tcp", *telAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "telemetry: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("telemetry: listening on %s\n", ln.Addr())
		mux := http.NewServeMux()
		mux.Handle("/", telemetry.Handler(telReg))
		mux.Handle("/trace", tracer.Handler())
		go http.Serve(ln, mux) //nolint:errcheck // best-effort introspection server
		if *telHold > 0 {
			defer time.Sleep(*telHold)
		}
	}
	// Registered after the hold defer so the file is written first (LIFO):
	// a scraper watching the hold window can read both endpoints while the
	// exported file already sits on disk.
	if *traceOut != "" {
		defer writeTraceOut()
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}()
	}
	exps := []experiment{
		{"fig2", "4x4 crossbar encrypt/decrypt walk-through, wrong-order failure", fig2},
		{"fig4", "polyomino voltage map for a 1 V pulse on the 8x8 crossbar", fig4},
		{"fig5", "single-cell hysteresis: encrypt vs calibrated decrypt pulse", fig5},
		{"montecarlo", "±5% wire variation: polyomino shape stability", montecarlo},
		{"table1", "ILP PoE placement for the 8x8 crossbar", table1},
		{"fig6", "polyomino coverage vs number of PoEs", fig6},
		{"table2", "NIST randomness suite over the nine SPE data sets", table2},
		{"bruteforce", "Section 6.2.1 attack cost model", bruteforce},
		{"coldboot", "Section 6.4 cold-boot window", coldboot},
		{"fig7", "performance overhead per workload and scheme", fig7},
		{"fig8", "% of memory kept encrypted per workload and scheme", fig8},
		{"table3", "scheme comparison summary", table3},
		{"poesweep", "ablation: NIST failures vs number of PoEs", poesweep},
		{"timersweep", "ablation: SPE-serial re-encryption timer trade-off", timersweep},
		{"wearlevel", "extension: start-gap defense against endurance attacks", wearlevelExp},
		{"nvcache", "future work: SPE-protected non-volatile cache sweep", nvcacheExp},
		{"concurrency", "sharded SPECU pipeline: sequential vs pooled throughput + shadow verification", concurrency},
		{"batchsweep", "adaptive batch scheduler: batch ops/s at workers 1/2/4/8 and -batch-size", batchsweep},
		{"sizewall", "scaled-array characterization: full precharacterization + scaled Table 1 at -rows x -cols", sizewall},
		{"redteam", "adversarial harness: side-channel distinguisher + crash injection (JSON verdict)", func() error { return runRedteam("all", *rtScript) }},
	}
	if *rtFlag != "" {
		if err := runRedteam(*rtFlag, *rtScript); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	switch *expFlag {
	case "list":
		fmt.Println("available experiments:")
		for _, e := range exps {
			fmt.Printf("  %-11s %s\n", e.name, e.desc)
		}
		return
	case "all":
		for _, e := range exps {
			fmt.Printf("==== %s: %s ====\n", e.name, e.desc)
			if err := e.run(); err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", e.name, err)
				os.Exit(1)
			}
			fmt.Println()
		}
		return
	default:
		for _, e := range exps {
			if e.name == *expFlag {
				if err := e.run(); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				return
			}
		}
		fmt.Fprintf(os.Stderr, "unknown experiment %q (try -exp list)\n", *expFlag)
		os.Exit(2)
	}
}

// defaultEngine builds the paper's 8x8/16-PoE engine once.
var engCache *core.Engine

func engine() (*core.Engine, error) {
	if engCache != nil {
		return engCache, nil
	}
	e, err := core.NewEngine(core.DefaultParams())
	if err != nil {
		return nil, err
	}
	if *precharFlag {
		start := time.Now()
		if err := e.Precharacterize(context.Background(), *workerFlag); err != nil {
			return nil, err
		}
		fmt.Printf("precharacterized %d PoE records in %v (workers=%d)\n",
			e.P.Xbar.Cells(), time.Since(start).Round(time.Millisecond), *workerFlag)
	}
	engCache = e
	return e, nil
}

// fig2 replays the Fig. 2 walk-through on a 4x4 crossbar.
func fig2() error {
	cfg := xbar.DefaultConfig()
	cfg.Rows, cfg.Cols = 4, 4
	cfg.VertReach, cfg.HorizReach = 2, 1
	res, err := poe.Solve(poe.Spec{Cfg: cfg, S: 10, MaxNodes: 50000})
	if err != nil {
		return err
	}
	params := core.DefaultParams()
	params.Xbar = cfg
	params.PoEs = res.PoEs
	eng, err := core.NewEngine(params)
	if err != nil {
		return err
	}
	ciph, err := core.NewCipher(eng, *seedFlag)
	if err != nil {
		return err
	}
	key := prng.NewKey(0x2B5, 0x1A7) // the "10-bit key" spirit: small seeds
	pt := []byte{0xD8, 0x6E, 0xB9, 0x6E}
	fmt.Printf("PoEs (%d): %v\n", len(res.PoEs), res.PoEs)
	fmt.Printf("plaintext : %08b\n", pt)
	ct, err := ciph.Encrypt(key, pt)
	if err != nil {
		return err
	}
	fmt.Printf("ciphertext: %08b\n", ct)
	back, err := ciph.Decrypt(key, ct)
	if err != nil {
		return err
	}
	fmt.Printf("decrypted : %08b  (match=%v)\n", back, string(back) == string(pt))
	// Fig. 2b: decrypting with the PoEs in the *same* order fails.
	sched := prng.DeriveSchedule(key, len(res.PoEs), device.NumPulses)
	xb2, err := xbar.New(cfg)
	if err != nil {
		return err
	}
	cal2 := xbar.Calibrate(xb2)
	if err := xb2.WriteBlock(ct); err != nil {
		return err
	}
	for step := 0; step < len(sched.Order); step++ { // wrong: forward order
		p := res.PoEs[sched.Order[step]]
		if err := xb2.ApplyPulse(cal2, p, xbar.InverseClass(sched.Classes[step])); err != nil {
			return err
		}
	}
	wrong := xb2.ReadBlock()
	fmt.Printf("same-order: %08b  (match=%v)  <- Fig. 2b: wrong PoE order fails\n",
		wrong, string(wrong) == string(pt))
	return nil
}

func fig4() error {
	xb, err := xbar.New(xbar.DefaultConfig())
	if err != nil {
		return err
	}
	poECell := xbar.Cell{Row: 4, Col: 3}
	m, err := xb.VoltageMap(poECell)
	if err != nil {
		return err
	}
	vt := xbar.DefaultConfig().Device.VtOff
	fmt.Printf("PoE at (%d,%d); drift threshold Vt = %.2f V\n", poECell.Row, poECell.Col, vt)
	fmt.Println("|V| across each cell (volts); * = in polyomino (>= Vt), P = PoE:")
	for r := 0; r < 8; r++ {
		var row []string
		for c := 0; c < 8; c++ {
			v := m[r*8+c]
			mark := " "
			if v >= vt {
				mark = "*"
			}
			if (xbar.Cell{Row: r, Col: c}) == poECell {
				mark = "P"
			}
			row = append(row, fmt.Sprintf("%5.2f%s", v, mark))
		}
		fmt.Println(strings.Join(row, " "))
	}
	fmt.Println("paper (Fig. 4): 1 V at the PoE, 0.76-0.99 V across the polyomino,")
	fmt.Println("sub-threshold elsewhere; our cross-shaped region reflects the same")
	fmt.Println("drive/keeper topology solved by nodal analysis.")
	return nil
}

func fig5() error {
	p := device.DefaultParams()
	enc := device.Pulse{Voltage: 1, Width: 0.071e-6}
	x0 := device.LevelCenter(1) // logic 10
	x1 := p.StateAfter(x0, enc)
	c := device.NewCell(p)
	c.X = x1
	decW, err := p.CalibrateDecryptWidth(x0, enc, 1e-9)
	if err != nil {
		return err
	}
	fmt.Printf("start: logic 10 (level 1), R = %.1f kOhm\n", (p.ROn+(p.ROff-p.ROn)*x0)/1e3)
	fmt.Printf("encrypt pulse: +%.0f V, %.3f us -> level %d (logic %02b), R = %.1f kOhm\n",
		enc.Voltage, enc.Width*1e6, device.QuantizeLevel(x1), device.LevelBits(device.QuantizeLevel(x1)),
		c.Resistance()/1e3)
	fmt.Printf("calibrated decrypt pulse: -1 V, %.3f us (paper: 0.015 us)\n", decW*1e6)
	x2 := p.StateAfter(x1, device.Pulse{Voltage: -1, Width: decW})
	fmt.Printf("after decrypt: level %d (logic %02b)  [paper Fig. 5: 172 kOhm / hysteresis]\n",
		device.QuantizeLevel(x2), device.LevelBits(device.QuantizeLevel(x2)))
	lib, err := device.BuildPulseLibrary(p)
	if err != nil {
		return err
	}
	fmt.Printf("pulse library: %d pulses; +1V widths %.3f-%.3f us, decrypt/encrypt width ratio %.2f\n",
		len(lib), lib[0].Enc.Width*1e6, lib[device.NumWidths-1].Enc.Width*1e6,
		lib[0].Dec.Width/lib[0].Enc.Width)
	return nil
}

func montecarlo() error {
	cfg := xbar.DefaultConfig()
	samples := 100
	if *fullFlag {
		samples = 1000
	}
	wire, err := xbar.MonteCarloShape(cfg, xbar.Cell{Row: 4, Col: 3}, samples, 0.05, 0, *seedFlag, *workerFlag)
	if err != nil {
		return err
	}
	fmt.Printf("±5%% wire resistance, %d samples: shape changed in %d (paper: 0), max |dV| drift %.4f V\n",
		wire.Samples, wire.ShapeChanged, wire.MaxVoltDelta)
	macro, err := xbar.MonteCarloShape(cfg, xbar.Cell{Row: 4, Col: 3}, samples, 0.05, 0.8, *seedFlag+1, *workerFlag)
	if err != nil {
		return err
	}
	fmt.Printf("macro device variation (±80%% R bounds): shape changed in %d/%d, max |dV| drift %.4f V\n",
		macro.ShapeChanged, macro.Samples, macro.MaxVoltDelta)
	return nil
}

func table1() error {
	cfg := xbar.DefaultConfig()
	for _, s := range []int{0, 32, 48, 56} {
		res, err := poe.Solve(poe.Spec{Cfg: cfg, S: s, MaxNodes: 100000, Telemetry: telReg, Tracer: tracer})
		if err != nil {
			fmt.Printf("S=%2d: %v\n", s, err)
			continue
		}
		st := poe.StatsOf(cfg, cfg.PaperShape, res.PoEs)
		fmt.Printf("S=%2d: %2d PoEs (optimal=%v)  single-covered=%2d  overlapped=%2d  total-coverage=%d\n",
			s, len(res.PoEs), res.Optimal, st.Single, st.Overlapped, st.TotalCover)
	}
	fmt.Println("paper: 16 PoEs secure the 8x8 crossbar (we reach 16 at S=56, the")
	fmt.Println("security-first operating point; see EXPERIMENTS.md)")
	return nil
}

func fig6() error {
	cfg := xbar.DefaultConfig()
	fmt.Println("PoEs  overlapped  single  uncovered   (8x8 crossbar, Table 1 shape)")
	for k := 10; k <= 17; k++ {
		_, st, err := poe.BestPlacement(cfg, nil, k, 200)
		if err != nil {
			return err
		}
		fmt.Printf("%4d  %9d  %6d  %9d\n", k, st.Overlapped, st.Single, st.Uncovered)
	}
	fmt.Println("paper (Fig. 6): overlapped coverage grows with PoE count; cells")
	fmt.Println("covered by a single polyomino are the known-plaintext vulnerability.")
	return nil
}

func table2() error {
	eng, err := engine()
	if err != nil {
		return err
	}
	spec := nist.DataSetSpec{Sequences: *seqsFlag, SeqBits: *bitsFlag, Seed: *seedFlag}
	if *fullFlag {
		spec = nist.PaperSpec()
	}
	allowed := nist.MaxAllowedFailures(spec.Sequences)
	fmt.Printf("%d sequences x %d bits per data set; allowed failures per test: %d\n",
		spec.Sequences, spec.SeqBits, allowed)
	b := nist.NewBuilder(eng)
	fmt.Printf("%-10s", "Test")
	for _, ds := range nist.AllDataSets {
		fmt.Printf(" %12s", ds)
	}
	fmt.Println()
	results := map[nist.DataSetName]nist.BatchResult{}
	for _, ds := range nist.AllDataSets {
		seqs, err := b.Build(ds, spec)
		if err != nil {
			return fmt.Errorf("%s: %w", ds, err)
		}
		results[ds] = nist.RunBatch(seqs)
	}
	worst := 0
	for _, test := range nist.TestNames {
		fmt.Printf("%-10s", test)
		for _, ds := range nist.AllDataSets {
			br := results[ds]
			f := br.Failures[test]
			if f > worst {
				worst = f
			}
			na := ""
			if br.Inapplicable[test] == br.Sequences {
				na = "*"
			}
			fmt.Printf(" %11d%1s", f, na)
		}
		fmt.Println()
	}
	fmt.Printf("(* = test not applicable at this sequence length)\n")
	if spec.Sequences >= 30 {
		fmt.Printf("%-10s", "uniform")
		for _, ds := range nist.AllDataSets {
			worstU := 1.0
			for _, test := range nist.TestNames {
				if u := nist.PValueUniformity(results[ds].PValues[test]); u < worstU {
					worstU = u
				}
			}
			fmt.Printf(" %12.4f", worstU)
		}
		fmt.Println("\n(second-level p-value uniformity; SP 800-22 requires >= 0.0001)")
	}
	verdict := "PASS"
	if worst > allowed {
		verdict = "FAIL"
	}
	fmt.Printf("worst cell: %d failures (allowed %d) -> %s; paper: all cells <= 5/150\n",
		worst, allowed, verdict)
	return nil
}

func bruteforce() error {
	fmt.Println(attacks.Describe())
	rep, err := attacks.MeasureAmbiguity(device.DefaultParams(), 200, uint64(*seedFlag))
	if err != nil {
		return err
	}
	fmt.Printf("known-plaintext ambiguity (Section 6.2.2): single-covered cell -> %.1f\n"+
		"consistent pulses; double-covered -> %.0f consistent pulse pairs\n",
		rep.MeanSingle, rep.MeanPair)
	fmt.Println("paper: ~1e32 years brute force, ~1e19 years with known ILP, AES ~1e38;")
	fmt.Println("our first-principles count charges the full 32^16 pulse space (see EXPERIMENTS.md).")
	return nil
}

func coldboot() error {
	cb := attacks.DefaultColdBoot()
	fmt.Printf("per-block encryption time: %.2f us (16 pulses x 100 ns)\n", cb.BlockSeconds()*1e6)
	fmt.Printf("2 Mb cache writeback window: %.2f ms (paper: 32.7 ms for its block count)\n", cb.WindowSeconds()*1e3)
	fmt.Printf("DRAM remanence: %.1f s -> SPE window is %.0fx smaller\n", cb.DRAMRetention, cb.Advantage())
	return nil
}

func runSweep() ([]sim.Row, []sim.SchemeFactory, error) {
	insts := *instFlag
	if *fullFlag {
		insts = 20_000_000
	}
	schemes := sim.Schemes()
	opts := sim.SweepOptions{Telemetry: telReg}
	if *verboseFlag {
		opts.OnProgress = func(done, total int, workload, scheme string) {
			if scheme == "" {
				scheme = "plain"
			}
			fmt.Printf("sweep: %d/%d done (%s/%s)\n", done, total, workload, scheme)
		}
	}
	rows, err := sim.SweepParallelOpts(context.Background(), trace.Profiles(), schemes, insts, *seedFlag, *workerFlag, opts)
	return rows, schemes, err
}

var sweepCache []sim.Row
var sweepSchemes []sim.SchemeFactory

func sweep() ([]sim.Row, []sim.SchemeFactory, error) {
	if sweepCache != nil {
		return sweepCache, sweepSchemes, nil
	}
	rows, schemes, err := runSweep()
	if err == nil {
		sweepCache, sweepSchemes = rows, schemes
	}
	return rows, schemes, err
}

func fig7() error {
	rows, schemes, err := sweep()
	if err != nil {
		return err
	}
	fmt.Printf("%-11s %8s |", "workload", "baseIPC")
	for _, s := range schemes {
		fmt.Printf(" %12s", s.Name)
	}
	fmt.Println("   (% overhead vs unencrypted)")
	for _, r := range rows {
		fmt.Printf("%-11s %8.3f |", r.Workload, r.BaseIPC)
		for _, s := range schemes {
			fmt.Printf(" %11.2f%%", r.OverheadPct[s.Name])
		}
		fmt.Println()
	}
	ov, _ := sim.Averages(rows, schemes)
	fmt.Printf("%-11s %8s |", "AVG", "")
	for _, s := range schemes {
		fmt.Printf(" %11.2f%%", ov[s.Name])
	}
	fmt.Println()
	fmt.Println("paper Fig. 7 averages: AES ~14%, i-NVMM ~1%, SPE-serial ~1.5%, SPE-parallel ~2.9%, stream ~0.4%")
	return nil
}

func fig8() error {
	rows, schemes, err := sweep()
	if err != nil {
		return err
	}
	fmt.Printf("%-11s |", "workload")
	for _, s := range schemes {
		fmt.Printf(" %12s", s.Name)
	}
	fmt.Println("   (time-averaged % of memory encrypted)")
	for _, r := range rows {
		fmt.Printf("%-11s |", r.Workload)
		for _, s := range schemes {
			fmt.Printf(" %11.1f%%", r.EncryptedPct[s.Name])
		}
		fmt.Println()
	}
	_, enc := sim.Averages(rows, schemes)
	fmt.Printf("%-11s |", "AVG")
	for _, s := range schemes {
		fmt.Printf(" %11.1f%%", enc[s.Name])
	}
	fmt.Println()
	fmt.Println("paper Fig. 8: AES 100%, i-NVMM ~27% (73% plaintext), SPE-serial 99.4%, SPE-parallel 100%")
	return nil
}

func table3() error {
	rows, schemes, err := sweep()
	if err != nil {
		return err
	}
	ov, enc := sim.Averages(rows, schemes)
	latency := map[string]string{
		"AES": "80", "i-NVMM": "80", "SPE-serial": "16 (decrypt; 32 incl. re-encrypt)",
		"SPE-parallel": "16 (+16 bank occupancy)", "Stream": "1",
	}
	names := make([]string, 0, len(schemes))
	for _, s := range schemes {
		names = append(names, s.Name)
	}
	sort.Strings(names)
	fmt.Printf("%-13s %-34s %12s %12s %10s\n", "Scheme", "Latency (cycles)", "Overhead", "Encrypted", "Area mm2")
	for _, n := range names {
		fmt.Printf("%-13s %-34s %11.2f%% %11.1f%% %10.2f\n",
			n, latency[n], ov[n], enc[n], areaOf(n))
	}
	fmt.Println("paper Table 3: AES 80cy/14%/100%/2.2; i-NVMM 80cy/1%/73%/5.3;")
	fmt.Println("SPE-serial 32cy/1.5%/99.4%/1.3; SPE-parallel 16cy/2.9%/100%/1.3; stream 1cy/0.4%/100%/6.18")
	return nil
}

func areaOf(name string) float64 {
	return secure.AreaOverheadMM2(name)
}

// concurrency measures the tentpole: the sharded, pooled SPECU pipeline
// against the sequential path, then rides a functional shadow along a
// timing run so the simulated miss stream exercises (and verifies) the
// concurrent crypto end to end.
func concurrency() error {
	const blocks = 32
	eng, err := engine()
	if err != nil {
		return err
	}
	g := prng.NewGen(uint64(*seedFlag) * 0x9E3779B9)
	key := prng.NewKey(g.Uint64(), g.Uint64())
	payload := make([]byte, core.BlockSize)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	addrs := make([]uint64, blocks)
	ops := make([]core.WriteOp, blocks)
	for i := range addrs {
		addrs[i] = uint64(i) * core.BlockSize
		ops[i] = core.WriteOp{Addr: addrs[i], Data: payload}
	}

	// One timed pass = write all blocks (encrypt) + read them back (decrypt).
	pass := func(workers int) (time.Duration, error) {
		s := core.NewSPECU(eng, core.Parallel)
		s.EnableSLO(sloEng)
		if telReg != nil {
			s.EnableTelemetry(telReg)
		}
		s.EnableTracing(tracer)
		if err := s.PowerOn(key); err != nil {
			return 0, err
		}
		if workers > 0 {
			if err := s.Serve(context.Background(), workers, 0); err != nil {
				return 0, err
			}
			defer s.Close()
		}
		start := time.Now()
		for _, e := range s.WriteBatch(context.Background(), ops) {
			if e != nil {
				return 0, e
			}
		}
		for _, r := range s.ReadBatch(context.Background(), addrs) {
			if r.Err != nil {
				return 0, r.Err
			}
		}
		return time.Since(start), nil
	}

	fmt.Printf("GOMAXPROCS=%d; %d blocks (write+read, %d crossbars each)\n",
		runtime.GOMAXPROCS(0), blocks, eng.CrossbarsPerBlock())
	seq, err := pass(0)
	if err != nil {
		return err
	}
	fmt.Printf("%-12s %10v  %8.1f blocks/s\n", "sequential", seq.Round(time.Millisecond),
		float64(2*blocks)/seq.Seconds())
	for _, w := range []int{1, 4, 8} {
		d, err := pass(w)
		if err != nil {
			return err
		}
		fmt.Printf("workers=%-4d %10v  %8.1f blocks/s  (%.2fx vs sequential)\n",
			w, d.Round(time.Millisecond), float64(2*blocks)/d.Seconds(),
			float64(seq)/float64(d))
	}

	// Functional shadow: run a timing simulation and mirror its NVMM block
	// traffic onto a served SPECU, verifying every read round-trips.
	sh, err := sim.NewShadow(context.Background(), sim.ShadowConfig{Workers: 4}, *seedFlag)
	if err != nil {
		return err
	}
	defer sh.Close()
	res, err := sim.RunShadowed(trace.Profiles()[0], secure.NewPlain(), *instFlag, *seedFlag, sh)
	if err != nil {
		return err
	}
	sh.Drain()
	opsN, verified, skipped := sh.Stats()
	fmt.Printf("shadowed %s: %d insts, %d mem reads / %d writes -> %d SPECU ops, %d reads verified, %d capped\n",
		res.Workload, res.Stats.Instructions, res.MemReads, res.MemWrites, opsN, verified, skipped)
	if err := sh.Err(); err != nil {
		return err
	}
	fmt.Println("shadow verification: all reads matched the model (PASS)")
	return nil
}

// heapWatcher samples runtime.MemStats in the background and records the
// HeapAlloc high-water mark, so size-wall runs report peak working-set
// growth (the transient factor + Green-table build) rather than the
// post-GC steady state.
type heapWatcher struct {
	stop chan struct{}
	done chan struct{}
	peak atomic.Uint64
}

func watchHeap() *heapWatcher {
	w := &heapWatcher{stop: make(chan struct{}), done: make(chan struct{})}
	sample := func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		for {
			old := w.peak.Load()
			if ms.HeapAlloc <= old || w.peak.CompareAndSwap(old, ms.HeapAlloc) {
				return
			}
		}
	}
	sample()
	go func() {
		defer close(w.done)
		tick := time.NewTicker(5 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				sample()
			case <-w.stop:
				sample()
				return
			}
		}
	}()
	return w
}

// Peak stops the watcher and returns the observed HeapAlloc high-water mark.
func (w *heapWatcher) Peak() uint64 {
	close(w.stop)
	<-w.done
	return w.peak.Load()
}

// sizewallRun is one cold-characterization measurement of the sizewall
// experiment, serialized under -json.
type sizewallRun struct {
	Label            string  `json:"label"`
	TruncationRadius int     `json:"truncation_radius,omitempty"`
	ElapsedNS        int64   `json:"elapsed_ns"`
	MSPerPoE         float64 `json:"ms_per_poe"`
	CellsVisited     int64   `json:"cells_visited"`
	CellsSkipped     int64   `json:"cells_skipped"`
	PeakHeapBytes    uint64  `json:"peak_heap_bytes"`
	Backend          string  `json:"backend"`
	NDDepth          int64   `json:"nd_depth,omitempty"`
	TableEntries     int64   `json:"table_entries,omitempty"`
	TableDense       int64   `json:"table_entries_dense,omitempty"`
}

// sizewallReport is the -json document of the sizewall experiment.
type sizewallReport struct {
	Rows         int           `json:"rows"`
	Cols         int           `json:"cols"`
	Cells        int           `json:"cells"`
	Path         string        `json:"path"`
	ScaledSlack  int           `json:"scaled_slack,omitempty"`
	SlackDensity float64       `json:"slack_density,omitempty"`
	ScaledErr    string        `json:"scaled_error,omitempty"`
	Runs         []sizewallRun `json:"runs"`
}

// sizewall demonstrates that characterization and placement now scale past
// the paper's 8x8: it derives the scaled Table 1 problem at -rows x -cols,
// then cold-characterizes the full device through whichever path CharAuto
// selects — the locality-truncated sketch above 64 cells, hierarchical
// above ~1024 unknowns — and reports the truncation telemetry plus the
// heap high-water mark, including a radius-capped re-run to show the knob.
// With -json the same numbers come out as one machine-comparable object.
func sizewall() error {
	cfg := xbar.DefaultConfig()
	cfg.Rows, cfg.Cols = *rowsFlag, *colsFlag
	if err := cfg.Validate(); err != nil {
		return err
	}
	rep := sizewallReport{Rows: cfg.Rows, Cols: cfg.Cols, Cells: cfg.Cells(), Path: "dense"}
	mode := "dense (legacy per-PoE factorization)"
	if cfg.Cells() > 64 {
		rep.Path = "sketch"
		mode = "sketch (one shared factorization + Green tables per device)"
	}
	human := !*jsonFlag
	if human {
		fmt.Printf("%dx%d crossbar (%d cells, %d PoEs to characterize); path: %s\n",
			cfg.Rows, cfg.Cols, cfg.Cells(), cfg.Cells(), mode)
	}

	spec, err := poe.ScaledSpec(cfg.Rows, cfg.Cols)
	if err != nil {
		rep.ScaledErr = err.Error()
		if human {
			fmt.Printf("scaled Table 1: %v\n", err)
		}
	} else {
		rep.ScaledSlack = spec.S
		rep.SlackDensity = float64(spec.S) / float64(cfg.Cells())
		if human {
			fmt.Printf("scaled Table 1: slack S=%d (%.1f%% of cells double-covered by the\n"+
				"lattice construction; the paper's 87.5%% at 8x8 is a boundary-clipping artifact)\n",
				spec.S, 100*rep.SlackDensity)
		}
	}

	// Attach a local registry when none is being served, so the truncation
	// counters and backend-selection telemetry are readable either way.
	reg := telReg
	if reg == nil {
		reg = telemetry.New()
		xbar.SetTelemetry(reg)
		circuit.SetTelemetry(reg)
		defer xbar.SetTelemetry(nil)
		defer circuit.SetTelemetry(nil)
	}
	warm := func(c xbar.Config, label string) error {
		xb, err := xbar.New(c)
		if err != nil {
			return err
		}
		visited0 := reg.Counter("xbar.cal.cells_visited").Load()
		skipped0 := reg.Counter("xbar.cal.cells_skipped").Load()
		dense0 := reg.Counter("circuit.sketch.backend_dense").Load()
		cg0 := reg.Counter("circuit.sketch.backend_cg").Load()
		hier0 := reg.Counter("circuit.sketch.backend_hier").Load()
		runtime.GC()
		hw := watchHeap()
		start := time.Now()
		if err := xbar.Calibrate(xb).WarmAll(context.Background(), *workerFlag); err != nil {
			return err
		}
		el := time.Since(start)
		run := sizewallRun{
			Label:            label,
			TruncationRadius: c.TruncationRadius,
			ElapsedNS:        el.Nanoseconds(),
			MSPerPoE:         float64(el.Nanoseconds()) / 1e6 / float64(c.Cells()),
			CellsVisited:     reg.Counter("xbar.cal.cells_visited").Load() - visited0,
			CellsSkipped:     reg.Counter("xbar.cal.cells_skipped").Load() - skipped0,
			PeakHeapBytes:    hw.Peak(),
			Backend:          "dense-per-poe",
		}
		switch {
		case reg.Counter("circuit.sketch.backend_hier").Load() > hier0:
			run.Backend = "hier"
			run.NDDepth = reg.Gauge("circuit.sketch.nd_depth").Load()
			run.TableEntries = reg.Gauge("circuit.sketch.table_entries").Load()
			run.TableDense = reg.Gauge("circuit.sketch.table_entries_dense").Load()
		case reg.Counter("circuit.sketch.backend_cg").Load() > cg0:
			run.Backend = "cg"
		case reg.Counter("circuit.sketch.backend_dense").Load() > dense0:
			run.Backend = "dense"
		}
		rep.Runs = append(rep.Runs, run)
		if human {
			fmt.Printf("%-22s %10v  (%.2f ms/PoE; sweep visited %d cells, skipped %d;\n"+
				"%22s backend %s, peak heap %.1f MB)\n",
				label, el.Round(time.Millisecond), run.MSPerPoE,
				run.CellsVisited, run.CellsSkipped, "", run.Backend,
				float64(run.PeakHeapBytes)/(1<<20))
			if run.Backend == "hier" {
				fmt.Printf("%22s nd depth %d, Green-table fill %d/%d entries (%.1f%% of dense)\n",
					"", run.NDDepth, run.TableEntries, run.TableDense,
					100*float64(run.TableEntries)/float64(max(run.TableDense, 1)))
			}
		}
		return nil
	}
	if err := warm(cfg, "full precharacterize"); err != nil {
		return err
	}
	capped := cfg
	capped.TruncationRadius = 5
	if capped.Cells() > 64 {
		if err := warm(capped, "radius-capped (R=5)"); err != nil {
			return err
		}
		if human {
			fmt.Println("(radius cap trades unmeasured far-field weights for sweep time; the")
			fmt.Println("default tolerance keeps fixed-point deviations bit-identical instead)")
		}
	}
	if *jsonFlag {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	return nil
}

// batchsweepRun is one worker-count measurement of the batchsweep
// experiment, serialized under -json.
type batchsweepRun struct {
	Workers      int     `json:"workers"`
	WriteOpsPerS float64 `json:"write_ops_per_s"`
	ReadOpsPerS  float64 `json:"read_ops_per_s"`
	CryptOpsPerS float64 `json:"crypt_ops_per_s"`
	// SpeedupVsW1 is the read-path throughput ratio against the workers=1
	// run of the same sweep; 0 on the workers=1 row itself.
	SpeedupVsW1 float64 `json:"speedup_vs_w1,omitempty"`
}

// batchsweepReport is the -json document of the batchsweep experiment —
// the soak-run feed for the future spe-serve SLO dashboard.
type batchsweepReport struct {
	BatchSize  int             `json:"batch_size"`
	Passes     int             `json:"passes"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	Runs       []batchsweepRun `json:"runs"`
}

// batchsweep measures the shard-coalesced batch scheduler end to end:
// steady-state WriteBatch, ReadBatch and DecryptBatch+EncryptBatch
// throughput over a -batch-size working set at 1, 2, 4 and 8 workers.
// Parallel mode keeps every phase in its encrypted steady state (reads
// decrypt and re-encrypt, overwrites reprogram ciphertext), so ops/s is
// comparable across phases and worker counts. On a GOMAXPROCS=1 host the
// pool clamps to one worker and every row measures the inline path — run
// on a multi-core host for real scaling numbers.
func batchsweep() error {
	eng, err := engine()
	if err != nil {
		return err
	}
	batch := *batchFlag
	if batch < 1 {
		return fmt.Errorf("batchsweep: -batch-size must be >= 1 (got %d)", batch)
	}
	const passes = 6
	g := prng.NewGen(uint64(*seedFlag) * 0x9E3779B9)
	key := prng.NewKey(g.Uint64(), g.Uint64())
	payload := make([]byte, core.BlockSize)
	for i := range payload {
		payload[i] = byte(i * 11)
	}
	addrs := make([]uint64, batch)
	ops := make([]core.WriteOp, batch)
	for i := range addrs {
		addrs[i] = uint64(i) * core.BlockSize
		ops[i] = core.WriteOp{Addr: addrs[i], Data: payload}
	}

	rep := batchsweepReport{BatchSize: batch, Passes: passes, GOMAXPROCS: runtime.GOMAXPROCS(0)}
	human := !*jsonFlag
	if human {
		fmt.Printf("GOMAXPROCS=%d; batch of %d blocks, %d timed passes per phase\n",
			rep.GOMAXPROCS, batch, passes)
		fmt.Printf("%-10s %14s %14s %14s %10s\n", "workers", "write ops/s", "read ops/s", "crypt ops/s", "read x")
	}
	ctx := context.Background()
	for _, w := range []int{1, 2, 4, 8} {
		s := core.NewSPECU(eng, core.Parallel)
		s.EnableSLO(sloEng)
		if telReg != nil {
			s.EnableTelemetry(telReg)
		}
		s.EnableTracing(tracer)
		if err := s.PowerOn(key); err != nil {
			return err
		}
		if err := s.Serve(ctx, w, 2*batch); err != nil {
			return err
		}
		// Untimed warm pass fabricates the working set.
		for _, e := range s.WriteBatch(ctx, ops) {
			if e != nil {
				s.Close()
				return e
			}
		}
		phase := func(f func() error) (float64, error) {
			start := time.Now()
			for p := 0; p < passes; p++ {
				if err := f(); err != nil {
					return 0, err
				}
			}
			return float64(passes*batch) / time.Since(start).Seconds(), nil
		}
		run := batchsweepRun{Workers: w}
		if run.WriteOpsPerS, err = phase(func() error {
			return errors.Join(s.WriteBatch(ctx, ops)...)
		}); err == nil {
			if run.ReadOpsPerS, err = phase(func() error {
				for _, r := range s.ReadBatch(ctx, addrs) {
					if r.Err != nil {
						return r.Err
					}
				}
				return nil
			}); err == nil {
				run.CryptOpsPerS, err = phase(func() error {
					if e := errors.Join(s.DecryptBatch(ctx, addrs)...); e != nil {
						return e
					}
					return errors.Join(s.EncryptBatch(ctx, addrs)...)
				})
			}
		}
		s.Close()
		if err != nil {
			return err
		}
		if w > 1 && len(rep.Runs) > 0 && rep.Runs[0].ReadOpsPerS > 0 {
			run.SpeedupVsW1 = run.ReadOpsPerS / rep.Runs[0].ReadOpsPerS
		}
		rep.Runs = append(rep.Runs, run)
		if human {
			x := "-"
			if run.SpeedupVsW1 > 0 {
				x = fmt.Sprintf("%.2fx", run.SpeedupVsW1)
			}
			fmt.Printf("%-10d %14.1f %14.1f %14.1f %10s\n",
				w, run.WriteOpsPerS, run.ReadOpsPerS, run.CryptOpsPerS, x)
		}
	}
	if *jsonFlag {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	return nil
}
