// Command xbar-view renders crossbar sneak-path voltage maps and polyomino
// shapes as text (the Fig. 4 visualization) for any PoE and crossbar size.
//
// Usage:
//
//	xbar-view -row 4 -col 3
//	xbar-view -rows 16 -cols 16 -row 8 -col 8 -rule voltage
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"snvmm/internal/xbar"
)

var (
	rowsFlag = flag.Int("rows", 8, "crossbar rows")
	colsFlag = flag.Int("cols", 8, "crossbar columns")
	rowFlag  = flag.Int("row", 4, "PoE row")
	colFlag  = flag.Int("col", 3, "PoE column")
	ruleFlag = flag.String("rule", "paper", "polyomino rule: paper | voltage")
)

func main() {
	flag.Parse()
	cfg := xbar.DefaultConfig()
	cfg.Rows, cfg.Cols = *rowsFlag, *colsFlag
	switch *ruleFlag {
	case "paper":
		cfg.Shape = xbar.ShapePaper
	case "voltage":
		cfg.Shape = xbar.ShapeVoltage
	default:
		fmt.Fprintf(os.Stderr, "unknown rule %q\n", *ruleFlag)
		os.Exit(2)
	}
	xb, err := xbar.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	poe := xbar.Cell{Row: *rowFlag, Col: *colFlag}
	if !cfg.InBounds(poe) {
		fmt.Fprintf(os.Stderr, "PoE (%d,%d) out of bounds\n", poe.Row, poe.Col)
		os.Exit(2)
	}
	m, err := xb.VoltageMap(poe)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	shape, err := xb.Shape(poe)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	inShape := map[xbar.Cell]bool{}
	for _, c := range shape {
		inShape[c] = true
	}
	fmt.Printf("%dx%d crossbar, PoE (%d,%d), rule %s, polyomino %d cells\n",
		cfg.Rows, cfg.Cols, poe.Row, poe.Col, *ruleFlag, len(shape))
	fmt.Println("|V| per cell; P = PoE, * = polyomino member")
	for r := 0; r < cfg.Rows; r++ {
		var row []string
		for c := 0; c < cfg.Cols; c++ {
			cell := xbar.Cell{Row: r, Col: c}
			mark := " "
			if inShape[cell] {
				mark = "*"
			}
			if cell == poe {
				mark = "P"
			}
			row = append(row, fmt.Sprintf("%5.2f%s", m[cfg.Index(cell)], mark))
		}
		fmt.Println(strings.Join(row, " "))
	}
}
