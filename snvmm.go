// Package snvmm is the public API of the Secure Memristor-based Main
// Memory library — a full reproduction of "Secure Memristor-based Main
// Memory" (DAC 2014). It exposes the sneak-path-encrypted NVMM device
// with its TPM-gated key lifecycle; the underlying physical and
// architectural models live in the internal packages (see DESIGN.md for
// the map).
//
// Quick start:
//
//	dev, _ := snvmm.Open(snvmm.DefaultOptions())
//	dev.PowerOn()
//	dev.Write(0x0, []byte("secret data ..."))   // encrypted at rest
//	dev.PowerOff()                              // key vanishes
//	dump, _ := dev.Steal(0x0)                   // attacker sees ciphertext
package snvmm

import (
	"context"
	"fmt"

	"snvmm/internal/core"
	"snvmm/internal/prng"
	"snvmm/internal/tpm"
	"snvmm/internal/xbar"
)

// BlockSize is the device's write granularity in bytes (one cache block).
const BlockSize = core.BlockSize

// Mode selects the SPE variant.
type Mode = core.Mode

// Modes.
const (
	Serial   = core.Serial
	Parallel = core.Parallel
)

// Options configures a device.
type Options struct {
	// Mode selects SPE-serial or SPE-parallel operation.
	Mode Mode
	// VarFrac is the fabrication parametric variation (0 disables).
	VarFrac float64
	// Seed individualizes the device fabrication and key material.
	Seed int64
	// SecuritySlack is the Table 1 S parameter; negative selects the
	// paper's default (16 PoEs on the 8x8 array).
	SecuritySlack int
}

// DefaultOptions returns the paper's configuration.
func DefaultOptions() Options {
	return Options{Mode: Parallel, Seed: 1, SecuritySlack: -1}
}

// Device is a secure NVMM: SPECU + crossbar arrays + TPM.
type Device struct {
	specu *core.SPECU
	tpm   *tpm.TPM
	blob  *tpm.SealedBlob
	devID string
	key   prng.Key
	n     uint64 // challenge counter
	on    bool
}

// Open fabricates a device: solves the PoE placement, provisions the TPM,
// enrolls the NVMM and seals the SPE key to the platform state.
func Open(opt Options) (*Device, error) {
	params := core.DefaultParams()
	params.Xbar.VarFrac = opt.VarFrac
	params.Xbar.Seed = opt.Seed
	params.SecuritySlack = opt.SecuritySlack
	eng, err := core.NewEngine(params)
	if err != nil {
		return nil, err
	}
	t := tpm.New([]byte(fmt.Sprintf("snvmm-mfg-%d", opt.Seed)))
	if err := t.Extend(0, []byte("firmware-v1")); err != nil {
		return nil, err
	}
	g := prng.NewGen(uint64(opt.Seed)*0x9E3779B9 + 17)
	key := prng.NewKey(g.Uint64(), g.Uint64())
	blob, err := t.Seal(key.Bytes(), []int{0})
	if err != nil {
		return nil, err
	}
	d := &Device{
		specu: core.NewSPECU(eng, opt.Mode),
		tpm:   t,
		blob:  blob,
		devID: fmt.Sprintf("nvmm-%d", opt.Seed),
		key:   key,
	}
	d.tpm.EnrollDevice(d.devID)
	return d, nil
}

// PoECount exposes the number of PoEs per crossbar (16 for the default
// 8x8 configuration) — also the scheme's latency in cycles.
func (d *Device) PoECount() int { return d.specu.Engine().PoECount() }

// PowerOn replays the boot measurements, authenticates the NVMM through
// the TPM challenge-response, unseals the SPE key and loads it into the
// SPECU's volatile register.
func (d *Device) PowerOn() error {
	if d.on {
		return fmt.Errorf("snvmm: already powered on")
	}
	d.tpm.Reset()
	if err := d.tpm.Extend(0, []byte("firmware-v1")); err != nil {
		return err
	}
	d.n++
	ch, err := d.tpm.NewChallenge(d.devID, d.n)
	if err != nil {
		return err
	}
	devKey := d.tpm.EnrollDevice(d.devID) // fused secret, device side
	if err := d.tpm.VerifyResponse(ch, tpm.Respond(devKey, ch)); err != nil {
		return fmt.Errorf("snvmm: NVMM authentication: %w", err)
	}
	kb, err := d.tpm.Unseal(d.blob)
	if err != nil {
		return fmt.Errorf("snvmm: key unseal: %w", err)
	}
	key, err := prng.KeyFromBytes(kb)
	if err != nil {
		return err
	}
	if err := d.specu.PowerOn(key); err != nil {
		return err
	}
	d.on = true
	return nil
}

// PowerOff encrypts any remaining plaintext blocks and drops the volatile
// key — the instant-off path.
func (d *Device) PowerOff() error {
	if err := d.specu.PowerOff(); err != nil {
		return err
	}
	d.on = false
	return nil
}

// Write stores one BlockSize-byte block at the block-aligned address.
func (d *Device) Write(addr uint64, data []byte) error {
	if len(data) != BlockSize {
		return fmt.Errorf("snvmm: Write needs %d bytes, got %d", BlockSize, len(data))
	}
	if addr%BlockSize != 0 {
		return fmt.Errorf("snvmm: address %#x not block aligned", addr)
	}
	return d.specu.Write(addr, data)
}

// Read fetches the plaintext of the block at addr.
func (d *Device) Read(addr uint64) ([]byte, error) {
	return d.specu.Read(addr)
}

// Steal dumps the raw stored bits without a key — what an attacker with
// physical access obtains (Attack 1).
func (d *Device) Steal(addr uint64) ([]byte, error) {
	return d.specu.Steal(addr)
}

// EncryptedFraction reports the fraction of allocated blocks currently in
// ciphertext.
func (d *Device) EncryptedFraction() float64 { return d.specu.EncryptedFraction() }

// Flush encrypts any blocks left plaintext by Serial-mode reads.
func (d *Device) Flush() error { return d.specu.EncryptPending() }

// PlacementCells returns a copy of the ILP-chosen PoE placement.
func (d *Device) PlacementCells() []xbar.Cell {
	return append([]xbar.Cell(nil), d.specu.Engine().Placement...)
}

// WriteOp is one element of a batched write (see WriteBatch).
type WriteOp = core.WriteOp

// ReadResult is one element of a batched read result (see ReadBatch).
type ReadResult = core.ReadResult

// Serve starts the device's SPECU worker pool: block operations submitted
// through WriteBatch/ReadBatch are spread across `workers` goroutines
// behind a bounded queue of the given depth (<= 0 selects defaults), and
// each block's crossbars pulse in parallel. Cancelling ctx stops the pool.
// The synchronous Read/Write API keeps working and shares the pool.
func (d *Device) Serve(ctx context.Context, workers, depth int) error {
	return d.specu.Serve(ctx, workers, depth)
}

// StopServing drains and detaches the worker pool; batched operations fall
// back to the sequential path.
func (d *Device) StopServing() { d.specu.Close() }

// WriteBatch stores many blocks at once, returning one error slot per op.
// Addresses must be block aligned and payloads BlockSize bytes.
func (d *Device) WriteBatch(ctx context.Context, ops []WriteOp) []error {
	for _, op := range ops {
		if len(op.Data) != BlockSize {
			errs := make([]error, len(ops))
			for i := range errs {
				errs[i] = fmt.Errorf("snvmm: WriteBatch needs %d-byte payloads, got %d at %#x", BlockSize, len(op.Data), op.Addr)
			}
			return errs
		}
		if op.Addr%BlockSize != 0 {
			errs := make([]error, len(ops))
			for i := range errs {
				errs[i] = fmt.Errorf("snvmm: address %#x not block aligned", op.Addr)
			}
			return errs
		}
	}
	return d.specu.WriteBatch(ctx, ops)
}

// ReadBatch fetches many blocks at once, one ReadResult per address in
// input order.
func (d *Device) ReadBatch(ctx context.Context, addrs []uint64) []ReadResult {
	return d.specu.ReadBatch(ctx, addrs)
}
