GO ?= go

.PHONY: build test test-race vet fuzz bench test-attacks ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The race suite: everything under the race detector. This is the gate for
# changes to internal/core's sharded SPECU, the worker pool and the batch
# layer (see DESIGN.md, "Concurrency model").
test-race:
	$(GO) test -race ./...

# Short fuzz passes over the round-trip harnesses; lengthen -fuzztime for a
# real hunt.
fuzz:
	$(GO) test ./internal/core -run xxx -fuzz FuzzSPERoundTrip -fuzztime 30s
	$(GO) test ./internal/cipher/stream -run xxx -fuzz FuzzStreamRoundTrip -fuzztime 30s
	$(GO) test ./internal/trace -run xxx -fuzz FuzzParseWorkload -fuzztime 30s

# The hardened attack tier: the red-team harness (side channels, crash
# injection, exposure windows), the attack cost models, and the secure-engine
# edge/workload suites — with the concurrency chaos test race-instrumented,
# then archived as BENCH_attacks.json so defense metrics diff across commits.
test-attacks:
	$(GO) test ./internal/redteam ./internal/attacks ./internal/secure ./internal/trace
	$(GO) test -race ./internal/redteam -run TestConcurrentBatchesUnderPowerCycles
	$(GO) test ./internal/redteam -run xxx -bench . -benchtime 1x -benchmem \
		| $(GO) run ./cmd/benchjson -require 4 -o BENCH_attacks.json
	@cat BENCH_attacks.json

# SPECU hot-path benchmarks (block crypt + sharded pipeline), archived as
# JSON so runs can be diffed across commits (EXPERIMENTS.md records the
# headline numbers). The second core run repeats the coalesced batch benches
# at -cpu 4 so the archive carries the multi-core matrix (benchjson derives
# speedup_vs_w1 per -cpu level); on a 1-vCPU host those rows measure
# timeslicing overhead, not speedup — see ci.sh for the gated assertion.
bench:
	( $(GO) test ./internal/core -run xxx -bench 'BenchmarkBlock|BenchmarkNewBlock|BenchmarkSPECU' -benchtime 20x -benchmem ; \
	  $(GO) test ./internal/core -run xxx -bench 'BenchmarkSPECU(ShardedRead|EncryptBatch)' -benchtime 20x -benchmem -cpu 4 ) \
		| $(GO) run ./cmd/benchjson -require 23 -o BENCH_specu.json
	@cat BENCH_specu.json
	$(GO) test ./internal/poe -run xxx -bench 'BenchmarkPlacement' -benchtime 1x -benchmem \
		| $(GO) run ./cmd/benchjson -require 2 -o BENCH_ilp.json
	@cat BENCH_ilp.json
	( $(GO) test ./internal/linalg -run xxx -bench 'BenchmarkCholesky' -benchtime 10x -benchmem ; \
	  $(GO) test ./internal/xbar -run xxx -bench 'BenchmarkColdCharacterize' -benchtime 3x -benchmem ) \
		| $(GO) run ./cmd/benchjson -require 10 -o BENCH_linalg.json
	@cat BENCH_linalg.json

ci:
	./ci.sh
