GO ?= go

.PHONY: build test test-race vet fuzz bench ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The race suite: everything under the race detector. This is the gate for
# changes to internal/core's sharded SPECU, the worker pool and the batch
# layer (see DESIGN.md, "Concurrency model").
test-race:
	$(GO) test -race ./...

# Short fuzz passes over the round-trip harnesses; lengthen -fuzztime for a
# real hunt.
fuzz:
	$(GO) test ./internal/core -run xxx -fuzz FuzzSPERoundTrip -fuzztime 30s
	$(GO) test ./internal/cipher/stream -run xxx -fuzz FuzzStreamRoundTrip -fuzztime 30s

# SPECU hot-path benchmarks (block crypt + sharded pipeline), archived as
# JSON so runs can be diffed across commits (EXPERIMENTS.md records the
# headline numbers).
bench:
	$(GO) test ./internal/core -run xxx -bench 'BenchmarkBlock|BenchmarkNewBlock|BenchmarkSPECU' -benchtime 20x -benchmem \
		| $(GO) run ./cmd/benchjson -require 12 -o BENCH_specu.json
	@cat BENCH_specu.json
	$(GO) test ./internal/poe -run xxx -bench 'BenchmarkPlacement' -benchtime 1x -benchmem \
		| $(GO) run ./cmd/benchjson -require 2 -o BENCH_ilp.json
	@cat BENCH_ilp.json
	( $(GO) test ./internal/linalg -run xxx -bench 'BenchmarkCholesky' -benchtime 10x -benchmem ; \
	  $(GO) test ./internal/xbar -run xxx -bench 'BenchmarkColdCharacterize' -benchtime 3x -benchmem ) \
		| $(GO) run ./cmd/benchjson -require 6 -o BENCH_linalg.json
	@cat BENCH_linalg.json

ci:
	./ci.sh
