package snvmm

// The benchmark harness: one benchmark per table/figure of the paper's
// evaluation. Each bench regenerates (a scaled version of) its experiment
// and reports domain metrics via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation. EXPERIMENTS.md records paper-vs-measured
// values; cmd/spe-sim prints the full tables.

import (
	"testing"

	"snvmm/internal/attacks"
	"snvmm/internal/core"
	"snvmm/internal/device"
	"snvmm/internal/mem"
	"snvmm/internal/nist"
	"snvmm/internal/poe"
	"snvmm/internal/prng"
	"snvmm/internal/secure"
	"snvmm/internal/sim"
	"snvmm/internal/trace"
	"snvmm/internal/xbar"
)

var benchEngine *core.Engine

func engineForBench(b *testing.B) *core.Engine {
	b.Helper()
	if benchEngine == nil {
		e, err := core.NewEngine(core.DefaultParams())
		if err != nil {
			b.Fatal(err)
		}
		benchEngine = e
	}
	return benchEngine
}

// BenchmarkFig2EncryptDecrypt measures the Fig. 2 walk-through: one full
// SPE encrypt+decrypt round trip of a 64-byte cache block across four 8x8
// crossbars.
func BenchmarkFig2EncryptDecrypt(b *testing.B) {
	eng := engineForBench(b)
	blk, err := eng.NewBlock(1)
	if err != nil {
		b.Fatal(err)
	}
	key := prng.NewKey(123, 456)
	data := make([]byte, core.BlockSize)
	for i := range data {
		data[i] = byte(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := blk.WritePlain(data); err != nil {
			b.Fatal(err)
		}
		if err := blk.Encrypt(key, uint64(i)); err != nil {
			b.Fatal(err)
		}
		if err := blk.Decrypt(key, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(eng.PoECount()), "PoEs/xbar")
}

// BenchmarkFig4PolyominoSolve measures one sneak-path nodal-analysis solve
// of the 8x8 crossbar — the Fig. 4 voltage map.
func BenchmarkFig4PolyominoSolve(b *testing.B) {
	xb, err := xbar.New(xbar.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := xb.VoltageMap(xbar.Cell{Row: 4, Col: 3}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5Calibration measures the hysteresis calibration of Fig. 5:
// finding the decrypt pulse width by bisection on the TEAM dynamics.
func BenchmarkFig5Calibration(b *testing.B) {
	p := device.DefaultParams()
	enc := device.Pulse{Voltage: 1, Width: 0.071e-6}
	x0 := device.LevelCenter(1)
	var w float64
	for i := 0; i < b.N; i++ {
		var err error
		w, err = p.CalibrateDecryptWidth(x0, enc, 1e-9)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(w*1e9, "decrypt-ns")
}

// BenchmarkTable1ILP measures the PoE placement ILP at the paper's
// security-first operating point (16 PoEs).
func BenchmarkTable1ILP(b *testing.B) {
	cfg := xbar.DefaultConfig()
	var poes int
	for i := 0; i < b.N; i++ {
		res, err := poe.Solve(poe.Spec{Cfg: cfg, S: 56, MaxNodes: 100000})
		if err != nil {
			b.Fatal(err)
		}
		poes = len(res.PoEs)
	}
	b.ReportMetric(float64(poes), "PoEs")
}

// BenchmarkFig6Coverage measures the Fig. 6 coverage sweep (10..17 PoEs).
func BenchmarkFig6Coverage(b *testing.B) {
	cfg := xbar.DefaultConfig()
	var single16 int
	for i := 0; i < b.N; i++ {
		for k := 10; k <= 17; k++ {
			_, st, err := poe.BestPlacement(cfg, nil, k, 100)
			if err != nil {
				b.Fatal(err)
			}
			if k == 16 {
				single16 = st.Single
			}
		}
	}
	b.ReportMetric(float64(single16), "single-covered@16")
}

// BenchmarkMonteCarloShape measures the Section 5 parametric-variation
// study (±5% wire resistance).
func BenchmarkMonteCarloShape(b *testing.B) {
	cfg := xbar.DefaultConfig()
	var changed int
	for i := 0; i < b.N; i++ {
		res, err := xbar.MonteCarloShape(cfg, xbar.Cell{Row: 4, Col: 3}, 20, 0.05, 0, 7, 1)
		if err != nil {
			b.Fatal(err)
		}
		changed = res.ShapeChanged
	}
	b.ReportMetric(float64(changed), "shape-changes")
}

// BenchmarkTable2NIST runs a scaled Table 2 column: build the random-
// plaintext/key data set and run the full SP 800-22 suite over it.
func BenchmarkTable2NIST(b *testing.B) {
	eng := engineForBench(b)
	builder := nist.NewBuilder(eng)
	spec := nist.DataSetSpec{Sequences: 2, SeqBits: 20000, Seed: 1}
	var failures int
	for i := 0; i < b.N; i++ {
		seqs, err := builder.Build(nist.RandomPTKey, spec)
		if err != nil {
			b.Fatal(err)
		}
		br := nist.RunBatch(seqs)
		failures = 0
		for _, f := range br.Failures {
			failures += f
		}
	}
	b.ReportMetric(float64(failures), "total-failures")
}

// BenchmarkBruteForceModel evaluates the Section 6.2.1 cost model.
func BenchmarkBruteForceModel(b *testing.B) {
	var years float64
	for i := 0; i < b.N; i++ {
		var err error
		years, err = attacks.DefaultBruteForce().Log10Years()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(years, "log10-years")
}

// BenchmarkColdBoot measures the Section 6.4 power-down flush on a dirtied
// hierarchy.
func BenchmarkColdBoot(b *testing.B) {
	var windowCycles uint64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		h, err := memHierarchy()
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 4096; j++ {
			h.StoreAccess(uint64(j)*64, 0)
		}
		b.StartTimer()
		_, windowCycles = h.PowerDown(1 << 20)
	}
	b.ReportMetric(float64(windowCycles)/3.2e9*1e3, "window-ms")
}

// BenchmarkFig7Performance runs one workload under Plain and SPE-serial
// and reports the overhead — the Fig. 7 quantity (cmd/spe-sim prints the
// full 10x5 sweep).
func BenchmarkFig7Performance(b *testing.B) {
	p, err := trace.ProfileByName("sjeng")
	if err != nil {
		b.Fatal(err)
	}
	var overhead float64
	for i := 0; i < b.N; i++ {
		base, err := sim.Run(p, secure.NewPlain(), 200_000, 1)
		if err != nil {
			b.Fatal(err)
		}
		spe, err := sim.Run(p, secure.NewSPESerial(10_000), 200_000, 1)
		if err != nil {
			b.Fatal(err)
		}
		overhead = (base.IPC - spe.IPC) / base.IPC * 100
	}
	b.ReportMetric(overhead, "overhead-%")
}

// BenchmarkFig8Coverage runs one workload under i-NVMM and SPE-serial and
// reports their time-averaged encrypted fractions — the Fig. 8 bars.
func BenchmarkFig8Coverage(b *testing.B) {
	p, err := trace.ProfileByName("sjeng")
	if err != nil {
		b.Fatal(err)
	}
	var invmm, spe float64
	for i := 0; i < b.N; i++ {
		r1, err := sim.Run(p, secure.NewINVMM(300_000), 200_000, 1)
		if err != nil {
			b.Fatal(err)
		}
		r2, err := sim.Run(p, secure.NewSPESerial(10_000), 200_000, 1)
		if err != nil {
			b.Fatal(err)
		}
		invmm, spe = r1.AvgEncrypted*100, r2.AvgEncrypted*100
	}
	b.ReportMetric(invmm, "i-NVMM-%")
	b.ReportMetric(spe, "SPE-serial-%")
}

// BenchmarkTable3Summary produces the Table 3 averages over a reduced
// workload subset.
func BenchmarkTable3Summary(b *testing.B) {
	var profiles []trace.Profile
	for _, n := range []string{"bzip2", "sjeng"} {
		p, err := trace.ProfileByName(n)
		if err != nil {
			b.Fatal(err)
		}
		profiles = append(profiles, p)
	}
	schemes := sim.Schemes()
	var aes, spe float64
	for i := 0; i < b.N; i++ {
		rows, err := sim.Sweep(profiles, schemes, 150_000, 1)
		if err != nil {
			b.Fatal(err)
		}
		ov, _ := sim.Averages(rows, schemes)
		aes, spe = ov["AES"], ov["SPE-serial"]
	}
	b.ReportMetric(aes, "AES-overhead-%")
	b.ReportMetric(spe, "SPE-overhead-%")
}

// BenchmarkSPEBlockThroughput measures raw SPE encryption bandwidth — the
// quantity behind the 1.6 us/block cold-boot arithmetic.
func BenchmarkSPEBlockThroughput(b *testing.B) {
	eng := engineForBench(b)
	ciph, err := core.NewCipher(eng, 3)
	if err != nil {
		b.Fatal(err)
	}
	key := prng.NewKey(9, 9)
	pt := make([]byte, ciph.BlockBytes())
	b.SetBytes(int64(len(pt)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ciph.Encrypt(key, pt); err != nil {
			b.Fatal(err)
		}
	}
}

// memHierarchy builds the default hierarchy with an SPE-serial engine for
// the cold-boot bench.
func memHierarchy() (*mem.Hierarchy, error) {
	return mem.DefaultHierarchy(secure.NewSPESerial(10_000))
}
